//! The all-to-all hash-repartition (shuffle) operators.
//!
//! A shuffle mesh lets `sip-parallel` change the partitioning class in the
//! middle of a plan: `writers` producer streams (each owning one hash
//! partition of the *old* class) are re-dealt into `dop` consumer streams
//! (each owning one hash partition of the *new* class) over a grid of
//! bounded channels held by the [`ExecContext`].
//!
//! Routing is a batch kernel: one digest pass per incoming batch feeds the
//! filter-tap stack (applied once, before routing — every row lands in
//! exactly one destination either way) *and* the destination choice, and
//! rows are dealt via per-destination selection vectors gathered into the
//! outgoing batches.
//!
//! Deadlock freedom: writers only ever *send* into the mesh and readers
//! only ever *receive* from it, so every blocking edge — producer → writer
//! (tree), writer → reader (mesh), reader → consumer (tree) — points
//! toward the root, whose channel the driver drains. The wait-for graph is
//! acyclic at any channel capacity, including the capacity-1 stress
//! configuration the property tests run.

use super::{count_in, Emitter, OpGuard};
use crate::context::{ExecContext, Msg};
use crate::monitor::ExecMonitor;
use crate::physical::{PhysKind, SaltRole, SaltSpec};
use crate::taps::TapKernel;
use crossbeam::channel::{Receiver, Select, Sender};
use sip_common::trace::Phase;
use sip_common::{exec_err, hash::partition_of, OpId, Result, SelVec, SpaceSaving};
use std::sync::Arc;

/// Candidate slots the per-writer space-saving sketch tracks. Guarantees
/// any key above `1/64` of the *sampled* stream is observed, at a few KB
/// of state per writer.
const SKETCH_CAPACITY: usize = 64;

/// The sketch sees every row until this many have been offered…
const SKETCH_WARMUP: u64 = 4096;

/// …then every `SKETCH_STRIDE`-th routed row. On a high-cardinality
/// stream the sketch's eviction path (an O(capacity) min-scan per
/// untracked key) would otherwise run per row and dwarf the routing push
/// itself; stride sampling keeps the observability near-free while a key
/// holding share `s` of the stream still holds share `s` of the sample,
/// so heavy hitters remain detectable — estimates and thresholds all
/// scale with the sampled total.
const SKETCH_STRIDE: u64 = 16;

/// Deal one batch's surviving selection into per-destination selection
/// vectors — the layout-agnostic core of the shuffle writer, shared by the
/// row and columnar arms. `route` is cleared and refilled; `rr`, `seen`,
/// and the sketch carry across batches.
#[allow(clippy::too_many_arguments)]
fn deal_routes(
    salt: &Option<SaltSpec>,
    dop: u32,
    rr: &mut u32,
    seen: &mut u64,
    sketch: &mut SpaceSaving,
    route: &mut [SelVec],
    owners: &[u32],
    digs: &[u64],
    sel: &SelVec,
) {
    for s in route.iter_mut() {
        s.clear();
    }
    for i in sel.iter() {
        let iu = i as usize;
        *seen += 1;
        if *seen <= SKETCH_WARMUP || seen.is_multiple_of(SKETCH_STRIDE) {
            sketch.offer(digs[iu]);
        }
        match salt {
            Some(s) if s.keys.covers(digs[iu]) => match s.role {
                SaltRole::Scatter => {
                    route[*rr as usize].push(i);
                    *rr = (*rr + 1) % dop;
                }
                SaltRole::Broadcast => {
                    for dest in route.iter_mut() {
                        dest.push(i);
                    }
                }
            },
            _ => route[owners[iu] as usize].push(i),
        }
    }
}

/// Run a `ShuffleWrite` node: route each input row to the mesh channel of
/// the consumer partition owning its key hash. Salted (hot) keys route
/// outside the hash invariant — round-robin across all readers for a
/// `Scatter` writer, to every reader for a `Broadcast` writer — which is
/// what keeps a Zipf-hot key from saturating one reader (see
/// [`crate::physical::SaltSpec`]). The tree output stays empty (EOF only) —
/// it exists so the paired reader anchors the writer in the plan tree.
pub(crate) fn run_shuffle_write(
    ctx: &Arc<ExecContext>,
    monitor: &Arc<dyn ExecMonitor>,
    op: OpId,
    input: Receiver<Msg>,
    out: Sender<Msg>,
) -> Result<()> {
    let node = ctx.plan.node(op);
    let (mesh, col, writer, dop, salt) = match &node.kind {
        PhysKind::ShuffleWrite {
            mesh,
            col,
            writer,
            dop,
            salt,
        } => (*mesh, *col, *writer, *dop, salt.clone()),
        other => return Err(exec_err!("run_shuffle_write on {}", other.name())),
    };
    let txs = ctx
        .take_shuffle_senders(mesh, writer)
        .ok_or_else(|| exec_err!("mesh {mesh} writer {writer} has no senders"))?;
    // One emitter per destination: each counts rows_out and batches
    // independently, so a full window toward one reader never blocks
    // traffic toward the others until this thread actually has a row for
    // the full one. The tap runs *here*, fused with the routing kernel
    // (every row reaches exactly one destination, so probing before
    // routing applies each filter to each row exactly once), hence the
    // passthrough emitters.
    let mut emitters: Vec<Emitter<'_>> = txs
        .into_iter()
        .map(|tx| Emitter::passthrough(ctx, op, tx))
        .collect();
    let mut kernel = TapKernel::new();
    let mut guard = OpGuard::new(ctx, op);
    let mut tr = ctx.tracer(op);
    let mut route: Vec<SelVec> = (0..dop as usize).map(|_| SelVec::default()).collect();
    let mut owners: Vec<u32> = Vec::new();
    let mut digs: Vec<u64> = Vec::new();
    // Round-robin cursor for scattered (salted) rows; writers start at
    // their own index so a mesh's writers do not all hammer reader 0
    // first.
    let mut rr = writer % dop;
    // Online skew observability: every routing digest feeds a space-saving
    // sketch (sharing the digest pass the router computed anyway), so the
    // metrics report which keys actually ran hot — validating, or
    // contradicting, the plan-time salt decision.
    let mut sketch = SpaceSaving::new(SKETCH_CAPACITY);
    let mut seen = 0u64;
    let mut routed = vec![0u64; dop as usize];
    loop {
        let t_recv = tr.begin();
        let msg = input.recv();
        tr.end(Phase::ChannelRecv, t_recv);
        // Route the surviving selection. The routing digests come from the
        // same cache as the tap's, so a filter over the shuffle key costs
        // no extra hash pass. NULL routing keys hash like any value: all
        // NULL rows of a stream land in one consistent partition, keeping
        // the union across readers multiset-correct even for rows that can
        // never join. Columnar batches are dealt as per-destination column
        // gathers and stay columnar on the mesh.
        match msg {
            Ok(Msg::Batch(batch)) => {
                guard.on_batch()?;
                count_in(ctx, op, 0, batch.len());
                kernel.begin(batch.len());
                let t0 = tr.begin();
                kernel.probe_op(ctx, op, &batch.rows);
                tr.end(Phase::TapProbe, t0);
                let t0 = tr.begin();
                {
                    let d = kernel.digests(&batch.rows, &[col]).digests();
                    owners.clear();
                    owners.extend(d.iter().map(|&d| partition_of(d, dop)));
                    digs.clear();
                    digs.extend_from_slice(d);
                }
                deal_routes(
                    &salt,
                    dop,
                    &mut rr,
                    &mut seen,
                    &mut sketch,
                    &mut route,
                    &owners,
                    &digs,
                    kernel.sel(),
                );
                // One Compute span per batch covering digest + deal; the
                // emitters' auto-flush sends inside extend_sel are recorded
                // as nested time.
                tr.end(Phase::Compute, t0);
                let t_deal = tr.begin();
                for (owner, s) in route.iter().enumerate() {
                    routed[owner] += s.len() as u64;
                    emitters[owner].extend_sel(&batch.rows, s.as_slice())?;
                }
                tr.add(Phase::Compute, t_deal);
            }
            Ok(Msg::Cols(batch)) => {
                guard.on_batch()?;
                count_in(ctx, op, 0, batch.len());
                kernel.begin(batch.len());
                let t0 = tr.begin();
                kernel.probe_op_cols(ctx, op, &batch);
                tr.end(Phase::TapProbe, t0);
                let t0 = tr.begin();
                {
                    let d = kernel.digests_cols(&batch, &[col]).digests();
                    owners.clear();
                    owners.extend(d.iter().map(|&d| partition_of(d, dop)));
                    digs.clear();
                    digs.extend_from_slice(d);
                }
                deal_routes(
                    &salt,
                    dop,
                    &mut rr,
                    &mut seen,
                    &mut sketch,
                    &mut route,
                    &owners,
                    &digs,
                    kernel.sel(),
                );
                tr.end(Phase::Compute, t0);
                let t_deal = tr.begin();
                for (owner, s) in route.iter().enumerate() {
                    if s.is_empty() {
                        continue;
                    }
                    routed[owner] += s.len() as u64;
                    emitters[owner].push_cols(batch.gather(s.as_slice()))?;
                }
                tr.add(Phase::Compute, t_deal);
            }
            Ok(Msg::Eof) => break,
            Err(_) => return Err(ctx.disconnect_err(op)),
        }
        if emitters.iter().all(|e| e.cancelled()) {
            // Every reader hung up (query failed/cancelled downstream):
            // stop pulling so the producer side winds down too.
            break;
        }
    }
    for e in emitters {
        e.finish()?;
    }
    // Publish routing observability once: per-destination row counts, the
    // keys whose observed share of this writer's stream exceeded one
    // reader's fair share, and the sketch itself (so a stage-boundary
    // drain can merge the per-writer frequency summaries into one mesh-
    // wide histogram).
    let hot_threshold = (sketch.total() / dop.max(1) as u64).max(1);
    let observed_hot = sketch.heavy_hitters(hot_threshold).len() as u64;
    tr.set_routed(&routed, observed_hot);
    tr.set_sketch(sketch);
    tr.flush();
    // Tree EOF first: the paired reader (and the rest of the pipeline) can
    // keep draining while the last writer builds the boundary snapshot.
    let _ = out.send(Msg::Eof);
    if ctx.mesh_writer_finished(mesh) {
        // This thread's flush above is already in the hub, so the drain
        // sees every writer of the mesh — a complete stage picture.
        let fb = ctx.stage_feedback(mesh);
        monitor.on_stage_boundary(ctx, &fb);
    }
    Ok(())
}

/// Run a `ShuffleRead` node: select-drain all mesh channels addressed to
/// this partition, forwarding batches downstream (whole-batch, allocation
/// adopted by the emitter), finishing when every writer has sent EOF. The
/// optional tree input (the paired writer) only ever carries an EOF and is
/// drained last.
pub(crate) fn run_shuffle_read(
    ctx: &Arc<ExecContext>,
    op: OpId,
    tree_inputs: Vec<Receiver<Msg>>,
    out: Sender<Msg>,
) -> Result<()> {
    let node = ctx.plan.node(op);
    let (mesh, partition) = match &node.kind {
        PhysKind::ShuffleRead {
            mesh, partition, ..
        } => (*mesh, *partition),
        other => return Err(exec_err!("run_shuffle_read on {}", other.name())),
    };
    let inputs = ctx
        .take_shuffle_receivers(mesh, partition)
        .ok_or_else(|| exec_err!("mesh {mesh} partition {partition} has no receivers"))?;
    let mut emitter = Emitter::new(ctx, op, out).outside_compute();
    let mut guard = OpGuard::new(ctx, op);
    let mut tr = ctx.tracer(op);
    // Same live-set select loop as Merge: re-register only when an input
    // reaches EOF, never per batch.
    let mut live: Vec<usize> = (0..inputs.len()).collect();
    'rebuild: while !live.is_empty() {
        let mut sel = Select::new();
        for &i in &live {
            sel.recv(&inputs[i]);
        }
        loop {
            let t_recv = tr.begin();
            let (slot, msg) = if live.len() == 1 {
                (0, inputs[live[0]].recv())
            } else {
                let opn = sel.select();
                let slot = opn.index();
                (slot, opn.recv(&inputs[live[slot]]))
            };
            tr.end(Phase::ChannelRecv, t_recv);
            match msg {
                Ok(Msg::Batch(batch)) => {
                    guard.on_batch()?;
                    count_in(ctx, op, 0, batch.len());
                    emitter.push_rows(batch.rows)?;
                    emitter.flush()?;
                    if emitter.cancelled() {
                        // Downstream hung up: fall through to drop the mesh
                        // receivers, which fails the writers' sends and
                        // unwinds the whole parallel region.
                        break 'rebuild;
                    }
                }
                Ok(Msg::Cols(batch)) => {
                    guard.on_batch()?;
                    count_in(ctx, op, 0, batch.len());
                    emitter.push_cols(batch)?;
                    if emitter.cancelled() {
                        break 'rebuild;
                    }
                }
                Ok(Msg::Eof) => {
                    live.remove(slot);
                    continue 'rebuild;
                }
                // A writer died mid-stream without Eof: the union across
                // this mesh partition is incomplete — hard error, not a
                // quiet live-set shrink.
                Err(_) => return Err(ctx.disconnect_err(op)),
            }
        }
    }
    // Release the mesh receivers first: on the cancellation path writers
    // may still be blocked mid-send into them, and they must observe the
    // disconnect before they can reach their tree EOF.
    drop(inputs);
    // The paired writer finishes its mesh sends before its tree EOF, so by
    // the time the mesh has fully EOF'd this drain returns promptly.
    for rx in tree_inputs {
        while let Ok(Msg::Batch(_) | Msg::Cols(_)) = rx.recv() {}
    }
    emitter.finish()?;
    tr.flush();
    Ok(())
}
