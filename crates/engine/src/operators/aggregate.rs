//! Hash aggregation (blocking) and pipelined distinct.
//!
//! Both are "state-producing operators" in the paper's sense: their hash
//! tables hold a completed subexpression once their input finishes, which is
//! exactly the state AIP summarizes (Examples 3.1/3.2 build AIP sets from
//! the PARTKEY state of aggregation and distinct operators).
//!
//! Group keys (and, for distinct, whole rows) are hashed with one digest
//! pass per batch; the group probe compares values positionally, so the
//! per-row path neither re-hashes nor clones a key.

use super::{count_in, msg_rows, Emitter, OpGuard};
use crate::context::{ExecContext, Msg};
use crate::monitor::{CompletionEvent, ExecMonitor, StateView};
use crate::physical::{BoundAgg, PhysKind};
use crossbeam::channel::{Receiver, Sender};
use sip_common::trace::Phase;
use sip_common::{exec_err, AttrId, DigestBuffer, FxHashMap, OpId, Result, Row};
use sip_expr::AggAccumulator;
use std::sync::Arc;

struct Group {
    key: Row,
    accs: Vec<AggAccumulator>,
}

struct GroupStateView<'a> {
    layout: &'a [AttrId],
    groups: &'a FxHashMap<u64, Vec<Group>>,
    bytes: usize,
}

impl StateView for GroupStateView<'_> {
    fn layout(&self) -> &[AttrId] {
        self.layout
    }
    fn len(&self) -> usize {
        self.groups.values().map(Vec::len).sum()
    }
    fn state_bytes(&self) -> usize {
        self.bytes
    }
    fn complete(&self) -> bool {
        true
    }
    fn for_each(&self, f: &mut dyn FnMut(&Row)) {
        for gs in self.groups.values() {
            for g in gs {
                f(&g.key);
            }
        }
    }
    fn distinct_hint(&self, pos: usize) -> Option<usize> {
        // Rows yielded are the group keys; with a single group column the
        // group count is its exact distinct count.
        (self.layout.len() == 1 && pos == 0).then(|| self.groups.values().map(Vec::len).sum())
    }
}

/// Run an `Aggregate` node.
pub(crate) fn run_aggregate(
    ctx: &Arc<ExecContext>,
    monitor: &Arc<dyn ExecMonitor>,
    op: OpId,
    input: Receiver<Msg>,
    out: Sender<Msg>,
) -> Result<()> {
    let node = ctx.plan.node(op);
    let (group_cols, aggs): (Vec<usize>, Vec<BoundAgg>) = match &node.kind {
        PhysKind::Aggregate { group_cols, aggs } => (group_cols.clone(), aggs.clone()),
        other => return Err(exec_err!("run_aggregate on {}", other.name())),
    };
    // The group keys' attribute layout = the first |group_cols| output attrs.
    let key_layout: Vec<AttrId> = node.layout[..group_cols.len()].to_vec();
    let mut groups: FxHashMap<u64, Vec<Group>> = FxHashMap::default();
    let mut bytes = 0usize;
    let mut rows_in = 0u64;
    let mut collector = ctx.take_collector(op, 0);
    let metrics = ctx.hub.op(op);
    // The build loop has no emitter (aggregation is blocking), so the
    // guard is the only per-batch cancellation check on this path.
    let mut guard = OpGuard::new(ctx, op);
    let mut tr = ctx.tracer(op);
    let mut digests = DigestBuffer::default();

    loop {
        let t_recv = tr.begin();
        let msg = input.recv();
        tr.end(Phase::ChannelRecv, t_recv);
        let Some(batch) = msg_rows(ctx, op, msg)? else {
            break;
        };
        guard.on_batch()?;
        count_in(ctx, op, 0, batch.len());
        rows_in += batch.len() as u64;
        // One hash pass over the group columns for the whole batch — shared
        // with the collector's working-copy build below.
        let t0 = tr.begin();
        digests.compute(&batch.rows, &group_cols);
        tr.end(Phase::Compute, t0);
        if let Some(c) = collector.as_mut() {
            let t0 = tr.begin();
            c.admit_batch(&batch.rows, &group_cols, &digests);
            tr.end(Phase::AdmitBuild, t0);
        }
        let t_upd = tr.begin();
        for (i, row) in batch.rows.iter().enumerate() {
            if digests.is_null_key(i) {
                continue; // NULL group keys are skipped (workloads are NULL-free)
            }
            let bucket = groups.entry(digests.digests()[i]).or_default();
            let existing = bucket.iter_mut().find(|g| {
                group_cols
                    .iter()
                    .enumerate()
                    .all(|(j, &p)| g.key.get(j) == row.get(p))
            });
            let group = match existing {
                Some(g) => g,
                None => {
                    let key = row.project(&group_cols);
                    let accs: Vec<AggAccumulator> =
                        aggs.iter().map(|a| a.func.accumulator()).collect();
                    let delta =
                        key.size_bytes() + accs.iter().map(|a| a.size_bytes()).sum::<usize>() + 16;
                    bytes += delta;
                    metrics.add_state(delta as i64, &ctx.hub.state);
                    bucket.push(Group { key, accs });
                    bucket.last_mut().unwrap()
                }
            };
            for (acc, spec) in group.accs.iter_mut().zip(aggs.iter()) {
                acc.update(&spec.input.eval(row)?)?;
            }
        }
        tr.add(Phase::Compute, t_upd);
    }

    if let Some(mut c) = collector.take() {
        c.finish(ctx);
    }
    // The subexpression below this aggregate is now fully computed; its
    // group keys are a candidate AIP set (Example 3.2).
    let view = GroupStateView {
        layout: &key_layout,
        groups: &groups,
        bytes,
    };
    monitor.on_input_complete(
        ctx,
        &CompletionEvent {
            op,
            input: 0,
            rows_in,
            view: &view,
        },
    );

    // Emit results. The emission loop runs outside any Compute span (the
    // build spans closed with the input), so auto-flush time must not be
    // marked nested.
    let mut emitter = Emitter::new(ctx, op, out).outside_compute();
    for bucket in groups.values() {
        for g in bucket {
            let mut vals: Vec<sip_common::Value> = g.key.values().to_vec();
            for acc in &g.accs {
                vals.push(acc.finish());
            }
            emitter.push(Row::new(vals))?;
        }
    }
    metrics.add_state(-(bytes as i64), &ctx.hub.state);
    emitter.finish()?;
    tr.flush();
    Ok(())
}

struct DistinctStateView<'a> {
    layout: &'a [AttrId],
    seen: &'a FxHashMap<u64, Vec<Row>>,
    n_rows: usize,
    bytes: usize,
}

impl StateView for DistinctStateView<'_> {
    fn layout(&self) -> &[AttrId] {
        self.layout
    }
    fn len(&self) -> usize {
        self.n_rows
    }
    fn state_bytes(&self) -> usize {
        self.bytes
    }
    fn complete(&self) -> bool {
        true
    }
    fn for_each(&self, f: &mut dyn FnMut(&Row)) {
        for rows in self.seen.values() {
            for r in rows {
                f(r);
            }
        }
    }
    fn distinct_hint(&self, pos: usize) -> Option<usize> {
        (self.layout.len() == 1 && pos == 0).then_some(self.n_rows)
    }
}

/// Run a `Distinct` node — pipelined: first occurrences are emitted
/// immediately (§III's running example reads the distinct operator's state
/// while the query continues). Rows are hashed once per batch (over all
/// columns) and deduplicated by digest bucket + exact compare.
pub(crate) fn run_distinct(
    ctx: &Arc<ExecContext>,
    monitor: &Arc<dyn ExecMonitor>,
    op: OpId,
    input: Receiver<Msg>,
    out: Sender<Msg>,
) -> Result<()> {
    let node = ctx.plan.node(op);
    let layout = node.layout.clone();
    let all_cols: Vec<usize> = (0..layout.len()).collect();
    let mut seen: FxHashMap<u64, Vec<Row>> = FxHashMap::default();
    let mut n_rows = 0usize;
    let mut bytes = 0usize;
    let mut rows_in = 0u64;
    let mut collector = ctx.take_collector(op, 0);
    let metrics = ctx.hub.op(op);
    let mut emitter = Emitter::new(ctx, op, out);
    let mut guard = OpGuard::new(ctx, op);
    let mut tr = ctx.tracer(op);
    let mut digests = DigestBuffer::default();

    loop {
        let t_recv = tr.begin();
        let msg = input.recv();
        tr.end(Phase::ChannelRecv, t_recv);
        let Some(batch) = msg_rows(ctx, op, msg)? else {
            break;
        };
        guard.on_batch()?;
        count_in(ctx, op, 0, batch.len());
        rows_in += batch.len() as u64;
        let t0 = tr.begin();
        digests.compute(&batch.rows, &all_cols);
        tr.end(Phase::Compute, t0);
        if let Some(c) = collector.as_mut() {
            let t0 = tr.begin();
            c.admit_batch(&batch.rows, &all_cols, &digests);
            tr.end(Phase::AdmitBuild, t0);
        }
        let t_dedup = tr.begin();
        for (i, row) in batch.rows.into_iter().enumerate() {
            let bucket = seen.entry(digests.digests()[i]).or_default();
            if !bucket.iter().any(|r| r == &row) {
                let delta = row.size_bytes() + 16;
                bytes += delta;
                n_rows += 1;
                metrics.add_state(delta as i64, &ctx.hub.state);
                bucket.push(row.clone());
                emitter.push(row)?;
            }
        }
        tr.add(Phase::Compute, t_dedup);
        emitter.flush()?;
    }

    if let Some(mut c) = collector.take() {
        c.finish(ctx);
    }
    let view = DistinctStateView {
        layout: &layout,
        seen: &seen,
        n_rows,
        bytes,
    };
    monitor.on_input_complete(
        ctx,
        &CompletionEvent {
            op,
            input: 0,
            rows_in,
            view: &view,
        },
    );
    metrics.add_state(-(bytes as i64), &ctx.hub.state);
    emitter.finish()?;
    tr.flush();
    Ok(())
}
