//! Hash aggregation (blocking) and pipelined distinct.
//!
//! Both are "state-producing operators" in the paper's sense: their hash
//! tables hold a completed subexpression once their input finishes, which is
//! exactly the state AIP summarizes (Examples 3.1/3.2 build AIP sets from
//! the PARTKEY state of aggregation and distinct operators).

use super::{count_in, key_of, Emitter};
use crate::context::{ExecContext, Msg};
use crate::monitor::{CompletionEvent, ExecMonitor, StateView};
use crate::physical::{BoundAgg, PhysKind};
use crossbeam::channel::{Receiver, Sender};
use sip_common::{exec_err, AttrId, FxHashMap, FxHashSet, OpId, Result, Row};
use sip_expr::AggAccumulator;
use std::sync::Arc;

struct Group {
    key: Row,
    accs: Vec<AggAccumulator>,
}

struct GroupStateView<'a> {
    layout: &'a [AttrId],
    groups: &'a FxHashMap<u64, Vec<Group>>,
    bytes: usize,
}

impl StateView for GroupStateView<'_> {
    fn layout(&self) -> &[AttrId] {
        self.layout
    }
    fn len(&self) -> usize {
        self.groups.values().map(Vec::len).sum()
    }
    fn state_bytes(&self) -> usize {
        self.bytes
    }
    fn complete(&self) -> bool {
        true
    }
    fn for_each(&self, f: &mut dyn FnMut(&Row)) {
        for gs in self.groups.values() {
            for g in gs {
                f(&g.key);
            }
        }
    }
    fn distinct_hint(&self, pos: usize) -> Option<usize> {
        // Rows yielded are the group keys; with a single group column the
        // group count is its exact distinct count.
        (self.layout.len() == 1 && pos == 0).then(|| self.groups.values().map(Vec::len).sum())
    }
}

/// Run an `Aggregate` node.
pub(crate) fn run_aggregate(
    ctx: &Arc<ExecContext>,
    monitor: &Arc<dyn ExecMonitor>,
    op: OpId,
    input: Receiver<Msg>,
    out: Sender<Msg>,
) -> Result<()> {
    let node = ctx.plan.node(op);
    let (group_cols, aggs): (Vec<usize>, Vec<BoundAgg>) = match &node.kind {
        PhysKind::Aggregate { group_cols, aggs } => (group_cols.clone(), aggs.clone()),
        other => return Err(exec_err!("run_aggregate on {}", other.name())),
    };
    // The group keys' attribute layout = the first |group_cols| output attrs.
    let key_layout: Vec<AttrId> = node.layout[..group_cols.len()].to_vec();
    let mut groups: FxHashMap<u64, Vec<Group>> = FxHashMap::default();
    let mut bytes = 0usize;
    let mut rows_in = 0u64;
    let mut collector = ctx.take_collector(op, 0);
    let metrics = ctx.hub.op(op);

    while let Ok(msg) = input.recv() {
        let Msg::Batch(batch) = msg else { break };
        count_in(ctx, op, 0, batch.len());
        rows_in += batch.len() as u64;
        for row in batch.rows {
            if let Some(c) = collector.as_mut() {
                c.admit(&row);
            }
            let Some((digest, _key)) = key_of(&row, &group_cols) else {
                continue; // NULL group keys are skipped (workloads are NULL-free)
            };
            let bucket = groups.entry(digest).or_default();
            let existing = bucket.iter_mut().find(|g| {
                group_cols
                    .iter()
                    .enumerate()
                    .all(|(i, &p)| g.key.get(i) == row.get(p))
            });
            let group = match existing {
                Some(g) => g,
                None => {
                    let key = row.project(&group_cols);
                    let accs: Vec<AggAccumulator> =
                        aggs.iter().map(|a| a.func.accumulator()).collect();
                    let delta =
                        key.size_bytes() + accs.iter().map(|a| a.size_bytes()).sum::<usize>() + 16;
                    bytes += delta;
                    metrics.add_state(delta as i64, &ctx.hub.state);
                    bucket.push(Group { key, accs });
                    bucket.last_mut().unwrap()
                }
            };
            for (acc, spec) in group.accs.iter_mut().zip(aggs.iter()) {
                acc.update(&spec.input.eval(&row)?)?;
            }
        }
    }

    if let Some(mut c) = collector.take() {
        c.finish(ctx);
    }
    // The subexpression below this aggregate is now fully computed; its
    // group keys are a candidate AIP set (Example 3.2).
    let view = GroupStateView {
        layout: &key_layout,
        groups: &groups,
        bytes,
    };
    monitor.on_input_complete(
        ctx,
        &CompletionEvent {
            op,
            input: 0,
            rows_in,
            view: &view,
        },
    );

    // Emit results.
    let mut emitter = Emitter::new(ctx, op, out);
    for bucket in groups.values() {
        for g in bucket {
            let mut vals: Vec<sip_common::Value> = g.key.values().to_vec();
            for acc in &g.accs {
                vals.push(acc.finish());
            }
            emitter.push(Row::new(vals))?;
        }
    }
    metrics.add_state(-(bytes as i64), &ctx.hub.state);
    emitter.finish()
}

struct DistinctStateView<'a> {
    layout: &'a [AttrId],
    seen: &'a FxHashSet<Row>,
    bytes: usize,
}

impl StateView for DistinctStateView<'_> {
    fn layout(&self) -> &[AttrId] {
        self.layout
    }
    fn len(&self) -> usize {
        self.seen.len()
    }
    fn state_bytes(&self) -> usize {
        self.bytes
    }
    fn complete(&self) -> bool {
        true
    }
    fn for_each(&self, f: &mut dyn FnMut(&Row)) {
        for r in self.seen {
            f(r);
        }
    }
    fn distinct_hint(&self, pos: usize) -> Option<usize> {
        (self.layout.len() == 1 && pos == 0).then_some(self.seen.len())
    }
}

/// Run a `Distinct` node — pipelined: first occurrences are emitted
/// immediately (§III's running example reads the distinct operator's state
/// while the query continues).
pub(crate) fn run_distinct(
    ctx: &Arc<ExecContext>,
    monitor: &Arc<dyn ExecMonitor>,
    op: OpId,
    input: Receiver<Msg>,
    out: Sender<Msg>,
) -> Result<()> {
    let node = ctx.plan.node(op);
    let layout = node.layout.clone();
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    let mut bytes = 0usize;
    let mut rows_in = 0u64;
    let mut collector = ctx.take_collector(op, 0);
    let metrics = ctx.hub.op(op);
    let mut emitter = Emitter::new(ctx, op, out);

    while let Ok(msg) = input.recv() {
        let Msg::Batch(batch) = msg else { break };
        count_in(ctx, op, 0, batch.len());
        rows_in += batch.len() as u64;
        for row in batch.rows {
            if let Some(c) = collector.as_mut() {
                c.admit(&row);
            }
            if !seen.contains(&row) {
                let delta = row.size_bytes() + 16;
                bytes += delta;
                metrics.add_state(delta as i64, &ctx.hub.state);
                seen.insert(row.clone());
                emitter.push(row)?;
            }
        }
        emitter.flush()?;
    }

    if let Some(mut c) = collector.take() {
        c.finish(ctx);
    }
    let view = DistinctStateView {
        layout: &layout,
        seen: &seen,
        bytes,
    };
    monitor.on_input_complete(
        ctx,
        &CompletionEvent {
            op,
            input: 0,
            rows_in,
            view: &view,
        },
    );
    metrics.add_state(-(bytes as i64), &ctx.hub.state);
    emitter.finish()
}
