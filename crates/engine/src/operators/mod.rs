//! Operator implementations. One OS thread runs each operator; rows flow
//! through bounded channels, giving the nondeterministic, backpressured
//! scheduling that push-style engines rely on (§I).
//!
//! Operator *interiors* are batch-at-a-time: each incoming batch gets one
//! key-digest pass per key-column set (shared between the join probe, the
//! injected-filter tap stack, and shuffle routing via
//! [`sip_common::DigestCache`]), and kernels drop or route rows through
//! selection vectors instead of cloning them. The row-at-a-time reference
//! semantics live in [`crate::oracle`].

pub(crate) mod aggregate;
pub(crate) mod exchange;
pub(crate) mod hash_join;
pub(crate) mod scan;
pub(crate) mod semi_join;
pub(crate) mod shuffle;
pub(crate) mod stateless;

use crate::context::{ExecContext, Msg};
use crate::fault::{FaultKind, FaultState};
use crate::taps::TapKernel;
use crossbeam::channel::Sender;
use sip_common::error::ExecFailure;
use sip_common::trace::{OpTracer, Phase};
use sip_common::{Batch, ColumnarBatch, OpId, Result, Row, Value};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Buffers output rows, applies this operator's filter tap once per batch
/// (as a batch kernel over shared digest buffers), updates metrics, and
/// pushes batches downstream. A failed send means the consumer is gone
/// (query cancelled or failed elsewhere); the emitter turns into a sink so
/// the operator can wind down cleanly.
///
/// Buffer discipline (two-buffer swap): `buf` is the filling batch, `spare`
/// is an idle recycled buffer. Sending hands `buf`'s allocation downstream
/// (the consumer frees it) and promotes `spare`; a batch fully dropped by
/// the tap keeps its buffer in place; [`Emitter::push_rows`] with an empty
/// `buf` adopts the caller's allocation outright and parks the idle buffer
/// as the spare. Forwarding operators therefore allocate nothing per batch
/// in steady state, and row-at-a-time producers allocate exactly the one
/// `Vec` that crosses the thread boundary.
pub(crate) struct Emitter<'a> {
    ctx: &'a Arc<ExecContext>,
    op: OpId,
    out: Sender<Msg>,
    buf: Vec<Row>,
    spare: Vec<Row>,
    /// Batch tap state; `None` when the host operator fuses the tap with
    /// its routing kernel and applies it before pushing (Exchange,
    /// ShuffleWrite).
    tap: Option<TapKernel>,
    cancelled: bool,
    /// The emitter's own span tracer (merged with the host operator's by
    /// summation — same op id). Flushes triggered from inside `push` run
    /// within the operator's `Compute` span; their duration is recorded as
    /// *nested* so the merge can subtract it from `Compute`, keeping the
    /// phases a partition of the thread's busy time.
    tracer: OpTracer,
    /// Do this host's pushes run inside a `Compute` span? Hosts that emit
    /// outside their spans (forwarding operators adopting whole batches,
    /// blocking operators emitting after their build) must say so via
    /// [`Emitter::outside_compute`], or auto-flush time would be
    /// subtracted from `Compute` spans it never ran inside.
    nested_in_compute: bool,
}

impl<'a> Emitter<'a> {
    pub(crate) fn new(ctx: &'a Arc<ExecContext>, op: OpId, out: Sender<Msg>) -> Self {
        Self::build(ctx, op, out, Some(TapKernel::new()))
    }

    /// An emitter that does **not** apply `op`'s tap on flush — for
    /// operators that already ran the tap kernel themselves (sharing its
    /// digest pass with their routing kernel). Metrics (`rows_out`) and
    /// batching behave identically.
    pub(crate) fn passthrough(ctx: &'a Arc<ExecContext>, op: OpId, out: Sender<Msg>) -> Self {
        Self::build(ctx, op, out, None)
    }

    fn build(
        ctx: &'a Arc<ExecContext>,
        op: OpId,
        out: Sender<Msg>,
        tap: Option<TapKernel>,
    ) -> Self {
        let cap = ctx.options.batch_size;
        Emitter {
            tracer: ctx.tracer(op),
            ctx,
            op,
            out,
            buf: Vec::with_capacity(cap),
            spare: Vec::new(),
            tap,
            cancelled: false,
            nested_in_compute: true,
        }
    }

    /// Declare that this host pushes rows *outside* its `Compute` spans:
    /// auto-flush time is then attributed normally (`TapProbe` +
    /// `ChannelSend`) without the nested subtraction. Required for any
    /// host that does not wrap its emitter calls in a `Compute` span —
    /// getting this wrong now trips the attribution-underflow check in
    /// [`crate::metrics::MetricsHub::finish`] instead of silently
    /// under-reporting `Compute`.
    pub(crate) fn outside_compute(mut self) -> Self {
        self.nested_in_compute = false;
        self
    }

    /// True once the downstream has hung up.
    pub(crate) fn cancelled(&self) -> bool {
        self.cancelled
    }

    /// Queue one output row.
    pub(crate) fn push(&mut self, row: Row) -> Result<()> {
        if self.cancelled {
            return Ok(());
        }
        self.buf.push(row);
        if self.buf.len() >= self.ctx.options.batch_size {
            self.flush_impl(true)?;
        }
        Ok(())
    }

    /// Queue a whole batch of output rows. With an empty buffer the rows
    /// become the batch buffer directly — the caller's allocation is
    /// reused, so forwarding operators never copy or reallocate.
    pub(crate) fn push_rows(&mut self, rows: Vec<Row>) -> Result<()> {
        if self.cancelled || rows.is_empty() {
            return Ok(());
        }
        if self.buf.is_empty() {
            // Park the larger idle buffer as the spare, adopt the rows.
            if self.buf.capacity() > self.spare.capacity() {
                std::mem::swap(&mut self.buf, &mut self.spare);
            }
            self.buf = rows;
            if self.buf.len() >= self.ctx.options.batch_size {
                self.flush_impl(true)?;
            }
        } else {
            for row in rows {
                self.push(row)?;
            }
        }
        Ok(())
    }

    /// Queue the selected rows of a batch (gather by selection vector; each
    /// row is an `Arc` clone, never a deep copy).
    pub(crate) fn extend_sel(&mut self, rows: &[Row], sel: &[u32]) -> Result<()> {
        for &i in sel {
            if self.cancelled {
                return Ok(());
            }
            self.push(rows[i as usize].clone())?;
        }
        Ok(())
    }

    /// Send a columnar batch downstream: flush any buffered rows first
    /// (stream order), run the tap as a columnar kernel, gather survivors
    /// per column, and ship the batch as [`Msg::Cols`] without ever
    /// materializing rows. Producers already emit `batch_size`-bounded
    /// chunks, so no re-coalescing happens here.
    pub(crate) fn push_cols(&mut self, batch: ColumnarBatch) -> Result<()> {
        if self.cancelled {
            return Ok(());
        }
        self.flush_impl(false)?;
        if batch.is_empty() || self.cancelled {
            return Ok(());
        }
        let mut batch = batch;
        if let Some(kernel) = self.tap.as_mut() {
            if !self.ctx.taps[self.op.index()].is_empty() {
                let t0 = self.tracer.begin();
                kernel.begin(batch.len());
                if kernel.probe_op_cols(self.ctx, self.op, &batch) > 0 {
                    batch = batch.gather(kernel.sel().as_slice());
                }
                self.tracer.end(Phase::TapProbe, t0);
                if batch.is_empty() {
                    return Ok(());
                }
            }
        }
        self.ctx
            .hub
            .op(self.op)
            .rows_out
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let t0 = self.tracer.begin();
        if self.tracer.enabled() {
            self.tracer.sample_occupancy(self.out.len());
        }
        if self.out.send(Msg::Cols(batch)).is_err() {
            self.cancelled = true;
        }
        self.tracer.end(Phase::ChannelSend, t0);
        Ok(())
    }

    /// Apply the tap (batch kernel) and send buffered rows.
    ///
    /// The tap is snapshotted and all counters are updated **once per
    /// batch** (per-row atomics would dominate the probe cost). The
    /// cancelled path neither snapshots nor allocates — a drained operator
    /// winding down after downstream hangup does no further work here.
    pub(crate) fn flush(&mut self) -> Result<()> {
        self.flush_impl(false)
    }

    /// `nested` marks flushes triggered from inside `push`/`push_rows`,
    /// which run within the caller's `Compute` span: their whole duration
    /// is additionally recorded as nested time for the merge to subtract.
    fn flush_impl(&mut self, nested: bool) -> Result<()> {
        let nested = nested && self.nested_in_compute;
        if self.cancelled {
            self.buf.clear();
            return Ok(());
        }
        // The per-batch cancellation check: every streaming operator
        // passes through here once per batch, so a tripped token (first
        // failure elsewhere, deadline, explicit cancel) tears the
        // pipeline down within one batch of work per operator. Two
        // relaxed atomic loads when untripped — the `cancel-gate` cell
        // of the kernels figure holds this to the noise floor.
        if self.ctx.cancel.is_cancelled() {
            let reason = self
                .ctx
                .cancel
                .reason()
                .unwrap_or_else(|| "query cancelled".into());
            return Err(self.ctx.attributed(self.op, reason, ExecFailure::Cancelled));
        }
        if self.buf.is_empty() {
            return Ok(());
        }
        let t_flush = if nested { self.tracer.begin() } else { 0 };
        if let Some(kernel) = self.tap.as_mut() {
            if !self.ctx.taps[self.op.index()].is_empty() {
                let t0 = self.tracer.begin();
                kernel.begin(self.buf.len());
                if kernel.probe_op(self.ctx, self.op, &self.buf) > 0 {
                    kernel.compact(&mut self.buf);
                }
                self.tracer.end(Phase::TapProbe, t0);
                if self.buf.is_empty() {
                    // The tap dropped the whole batch: the emptied buffer
                    // stays in place, its capacity reused by the next batch.
                    if nested {
                        self.tracer.add_nested(t_flush);
                    }
                    return Ok(());
                }
            }
        }
        self.ctx
            .hub
            .op(self.op)
            .rows_out
            .fetch_add(self.buf.len() as u64, Ordering::Relaxed);
        let rows = std::mem::replace(&mut self.buf, std::mem::take(&mut self.spare));
        let t0 = self.tracer.begin();
        if self.tracer.enabled() {
            // Downstream occupancy right before the send: a persistently
            // full queue means this edge is backpressured (the send span
            // will show the blocked time).
            self.tracer.sample_occupancy(self.out.len());
        }
        if self.out.send(Msg::Batch(Batch::new(rows))).is_err() {
            self.cancelled = true;
        } else if self.buf.capacity() == 0 {
            // No recycled buffer available: provision batch capacity up
            // front so row-at-a-time pushes don't grow it piecemeal.
            self.buf.reserve(self.ctx.options.batch_size);
        }
        self.tracer.end(Phase::ChannelSend, t0);
        if nested {
            self.tracer.add_nested(t_flush);
        }
        Ok(())
    }

    /// Flush and send EOF.
    pub(crate) fn finish(mut self) -> Result<()> {
        self.flush()?;
        let _ = self.out.send(Msg::Eof);
        self.ctx
            .hub
            .op(self.op)
            .finished
            .store(true, Ordering::Relaxed);
        self.tracer.flush();
        Ok(())
    }
}

/// Extract `(digest, key values)` for the key columns, or `None` when any
/// key is NULL (SQL: NULL keys never join). Row-at-a-time — the oracle and
/// key-materializing paths use it; batch kernels use
/// [`sip_common::DigestBuffer`] instead.
#[inline]
pub(crate) fn key_of(row: &Row, positions: &[usize]) -> Option<(u64, Vec<Value>)> {
    for &p in positions {
        if row.get(p).is_null() {
            return None;
        }
    }
    Some((row.key_hash(positions), row.key_values(positions)))
}

/// Normalize a received message to a row batch at the row seams (stateful
/// operators, the root sink, remote feeds): columnar payloads materialize
/// rows on receipt, a clean `Eof` ends the stream (`Ok(None)`), and a
/// disconnect without `Eof` — the upstream operator died — is a hard
/// attributed error, never a quiet end-of-stream.
#[inline]
pub(crate) fn msg_rows(
    ctx: &ExecContext,
    op: OpId,
    msg: std::result::Result<Msg, crossbeam::channel::RecvError>,
) -> Result<Option<Batch>> {
    match msg {
        Ok(Msg::Batch(b)) => Ok(Some(b)),
        Ok(Msg::Cols(c)) => Ok(Some(c.to_batch())),
        Ok(Msg::Eof) => Ok(None),
        Err(_) => Err(ctx.disconnect_err(op)),
    }
}

/// Per-operator lifecycle guard: advances the injected-fault state and
/// checks the shared cancellation token, once per incoming batch. Two
/// branches + two atomic loads when no fault is armed and the token is
/// untripped.
pub(crate) struct OpGuard<'a> {
    ctx: &'a Arc<ExecContext>,
    op: OpId,
    faults: FaultState,
}

impl<'a> OpGuard<'a> {
    pub(crate) fn new(ctx: &'a Arc<ExecContext>, op: OpId) -> Self {
        OpGuard {
            faults: ctx.arm_fault(op),
            ctx,
            op,
        }
    }

    /// Call once per incoming batch (receive side — the `Emitter` covers
    /// the send side, but blocking builds may buffer many batches before
    /// their first emit, and a consumer-less fault would otherwise go
    /// unchecked until emission).
    #[inline]
    pub(crate) fn on_batch(&mut self) -> Result<()> {
        if let Some(kind) = self.faults.on_batch() {
            self.fire(kind)?;
        }
        self.ctx.check_cancel(self.op)
    }

    fn fire(&self, kind: FaultKind) -> Result<()> {
        match kind {
            FaultKind::Panic => panic!(
                "injected fault: panic at op {} ({})",
                self.op,
                self.ctx.plan.node(self.op).kind.name()
            ),
            FaultKind::Error => Err(self.ctx.attributed(
                self.op,
                "injected fault: operator error",
                ExecFailure::Error,
            )),
            FaultKind::Stall(d) => {
                // A cancellable stall: the follow-up check_cancel in
                // on_batch converts a mid-stall cancellation (e.g. the
                // deadline this stall was injected to blow) into the
                // operator's exit.
                self.ctx.cancel.sleep_cancellable(d);
                Ok(())
            }
            FaultKind::Hang => {
                // A wedged operator: sleep until this run's token trips
                // (failure elsewhere, deadline, or a recovery supervisor
                // cancelling a superseded attempt), then exit as
                // cancelled. Only speculation, deadlines, or cancel get
                // a query past this fault.
                self.ctx
                    .cancel
                    .sleep_cancellable(Duration::from_secs(86_400));
                Err(self.ctx.attributed(
                    self.op,
                    "injected fault: operator hung until cancelled",
                    ExecFailure::Cancelled,
                ))
            }
        }
    }
}

/// Record arrival metrics for an input (one call per batch).
#[inline]
pub(crate) fn count_in(ctx: &ExecContext, op: OpId, input: usize, n: usize) {
    let m = ctx.hub.op(op);
    m.rows_in[input].fetch_add(n as u64, Ordering::Relaxed);
    m.batches_in.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::lower;
    use crate::taps::MergePolicy;
    use crate::InjectedFilter;
    use sip_common::{hash_key, DataType, Field, Schema};
    use sip_data::{Catalog, Table};
    use sip_filter::{AipSetBuilder, AipSetKind};
    use sip_plan::QueryBuilder;

    fn scan_ctx(batch_size: usize) -> Arc<ExecContext> {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let rows: Vec<Row> = (0..8).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let mut c = Catalog::new();
        c.add(Table::new("t", schema, vec![], vec![], rows).unwrap());
        let mut q = QueryBuilder::new(&c);
        let t = q.scan("t", "t", &["k"]).unwrap();
        let plan = lower(t.plan(), q.attrs().clone(), &c).unwrap();
        ExecContext::new(
            Arc::new(plan),
            crate::context::ExecOptions {
                batch_size,
                ..Default::default()
            },
        )
    }

    fn keys_filter(keys: &[i64]) -> InjectedFilter {
        let mut b = AipSetBuilder::new(AipSetKind::Hash, keys.len().max(1), 0.05, 1);
        for &k in keys {
            let key = vec![Value::Int(k)];
            b.insert(hash_key(&key), &key);
        }
        InjectedFilter::new("test", vec![0], Arc::new(b.finish()))
    }

    #[test]
    fn flush_applies_tap_and_counts_once_per_batch() {
        let ctx = scan_ctx(64);
        let op = OpId(0);
        ctx.inject_filter(op, keys_filter(&[1, 3]), MergePolicy::Stack);
        let (tx, rx) = crossbeam::channel::bounded(4);
        let mut e = Emitter::new(&ctx, op, tx);
        for i in 0..4 {
            e.push(Row::new(vec![Value::Int(i)])).unwrap();
        }
        e.flush().unwrap();
        // 4 probed, 2 dropped — tallied exactly once for the whole batch,
        // on both the hub and the per-filter counters.
        let m = ctx.hub.op(op);
        assert_eq!(m.aip_probed.load(Ordering::Relaxed), 4);
        assert_eq!(m.aip_dropped.load(Ordering::Relaxed), 2);
        let chain = ctx.taps[op.index()].snapshot();
        assert_eq!(chain[0].probed.load(Ordering::Relaxed), 4);
        assert_eq!(chain[0].dropped.load(Ordering::Relaxed), 2);
        match rx.try_recv() {
            Ok(Msg::Batch(b)) => assert_eq!(b.len(), 2),
            other => panic!("expected surviving batch, got {other:?}"),
        }
    }

    #[test]
    fn push_rows_forwards_whole_batches() {
        let ctx = scan_ctx(4);
        let op = OpId(0);
        let (tx, rx) = crossbeam::channel::bounded(8);
        let mut e = Emitter::new(&ctx, op, tx);
        // A whole batch at/above batch_size flushes immediately, reusing
        // the caller's allocation as the outgoing batch.
        let rows: Vec<Row> = (0..5).map(|i| Row::new(vec![Value::Int(i)])).collect();
        e.push_rows(rows).unwrap();
        match rx.try_recv() {
            Ok(Msg::Batch(b)) => assert_eq!(b.len(), 5),
            other => panic!("expected forwarded batch, got {other:?}"),
        }
        // A short batch buffers until an explicit flush.
        e.push_rows(vec![Row::new(vec![Value::Int(9)])]).unwrap();
        assert!(rx.try_recv().is_err());
        e.flush().unwrap();
        match rx.try_recv() {
            Ok(Msg::Batch(b)) => assert_eq!(b.len(), 1),
            other => panic!("expected flushed batch, got {other:?}"),
        }
        assert_eq!(ctx.hub.op(op).rows_out.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn extend_sel_gathers_selected_rows() {
        let ctx = scan_ctx(64);
        let op = OpId(0);
        let (tx, rx) = crossbeam::channel::bounded(4);
        let mut e = Emitter::new(&ctx, op, tx);
        let rows: Vec<Row> = (0..6).map(|i| Row::new(vec![Value::Int(i)])).collect();
        e.extend_sel(&rows, &[1, 4, 5]).unwrap();
        e.flush().unwrap();
        match rx.try_recv() {
            Ok(Msg::Batch(b)) => {
                let got: Vec<i64> = b.rows.iter().map(|r| r.get(0).as_int().unwrap()).collect();
                assert_eq!(got, vec![1, 4, 5]);
            }
            other => panic!("expected gathered batch, got {other:?}"),
        }
    }

    #[test]
    fn whole_batch_drop_keeps_buffer_and_counts() {
        let ctx = scan_ctx(64);
        let op = OpId(0);
        // Empty filter set: every probed row drops.
        ctx.inject_filter(op, keys_filter(&[]), MergePolicy::Stack);
        let (tx, rx) = crossbeam::channel::bounded(4);
        let mut e = Emitter::new(&ctx, op, tx);
        for i in 0..4 {
            e.push(Row::new(vec![Value::Int(i)])).unwrap();
        }
        e.flush().unwrap();
        assert!(rx.try_recv().is_err(), "fully-dropped batch must not send");
        let m = ctx.hub.op(op);
        assert_eq!(m.aip_probed.load(Ordering::Relaxed), 4);
        assert_eq!(m.aip_dropped.load(Ordering::Relaxed), 4);
        assert_eq!(m.rows_out.load(Ordering::Relaxed), 0);
        // The emitter is still usable afterwards.
        e.push(Row::new(vec![Value::Int(7)])).unwrap();
        e.finish().unwrap();
        assert_eq!(m.aip_probed.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn cancelled_emitter_stops_probing_and_buffering() {
        let ctx = scan_ctx(2);
        let op = OpId(0);
        ctx.inject_filter(op, keys_filter(&[0, 1, 2, 3]), MergePolicy::Stack);
        let (tx, rx) = crossbeam::channel::bounded(4);
        let mut e = Emitter::new(&ctx, op, tx);
        drop(rx); // downstream hangs up
        e.push(Row::new(vec![Value::Int(0)])).unwrap();
        e.push(Row::new(vec![Value::Int(1)])).unwrap(); // batch full → flush → send fails
        assert!(e.cancelled());
        let probed_at_cancel = ctx.hub.op(op).aip_probed.load(Ordering::Relaxed);
        let rows_out_at_cancel = ctx.hub.op(op).rows_out.load(Ordering::Relaxed);
        // Everything after cancellation is a no-op: no buffering, no tap
        // snapshots, no counter movement.
        for i in 0..100 {
            e.push(Row::new(vec![Value::Int(i)])).unwrap();
        }
        e.flush().unwrap();
        assert_eq!(
            ctx.hub.op(op).aip_probed.load(Ordering::Relaxed),
            probed_at_cancel
        );
        assert_eq!(
            ctx.hub.op(op).rows_out.load(Ordering::Relaxed),
            rows_out_at_cancel
        );
        e.finish().unwrap();
    }

    #[test]
    fn tripped_token_fails_the_emitter_per_batch() {
        let ctx = scan_ctx(2);
        let op = OpId(0);
        let (tx, _rx) = crossbeam::channel::bounded(4);
        let mut e = Emitter::new(&ctx, op, tx);
        e.push(Row::new(vec![Value::Int(0)])).unwrap();
        ctx.cancel.cancel("test cancel");
        let err = e.flush().unwrap_err();
        assert_eq!(
            err.exec_class(),
            Some(sip_common::ExecFailure::Cancelled),
            "a tripped token must surface as an attributed Cancelled error"
        );
        assert!(err.message().contains("test cancel"));
    }

    #[test]
    fn op_guard_fires_injected_error_with_attribution() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let rows: Vec<Row> = (0..8).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let mut c = Catalog::new();
        c.add(Table::new("t", schema, vec![], vec![], rows).unwrap());
        let mut q = QueryBuilder::new(&c);
        let t = q.scan("t", "t", &["k"]).unwrap();
        let plan = lower(t.plan(), q.attrs().clone(), &c).unwrap();
        let ctx = ExecContext::new(
            Arc::new(plan),
            crate::context::ExecOptions::default().with_faults(
                crate::fault::FaultPlan::none().with_kind_fault("Scan", 1, FaultKind::Error),
            ),
        );
        let mut guard = OpGuard::new(&ctx, OpId(0));
        assert!(guard.on_batch().is_ok(), "one clean batch first");
        let err = guard.on_batch().unwrap_err();
        assert_eq!(err.exec_class(), Some(sip_common::ExecFailure::Error));
        assert!(err.to_string().contains("op 0"));
    }

    #[test]
    fn key_of_rejects_nulls() {
        let r = Row::new(vec![Value::Int(1), Value::Null]);
        assert!(key_of(&r, &[0]).is_some());
        assert!(key_of(&r, &[1]).is_none());
        assert!(key_of(&r, &[0, 1]).is_none());
    }

    #[test]
    fn key_of_is_stable() {
        let a = Row::new(vec![Value::Int(7), Value::str("x")]);
        let b = Row::new(vec![Value::Int(7), Value::str("y")]);
        assert_eq!(key_of(&a, &[0]).unwrap().0, key_of(&b, &[0]).unwrap().0);
        assert_eq!(key_of(&a, &[0]).unwrap().1, vec![Value::Int(7)]);
    }
}
