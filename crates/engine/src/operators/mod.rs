//! Operator implementations. One OS thread runs each operator; rows flow
//! through bounded channels, giving the nondeterministic, backpressured
//! scheduling that push-style engines rely on (§I).

pub(crate) mod aggregate;
pub(crate) mod hash_join;
pub(crate) mod scan;
pub(crate) mod semi_join;
pub(crate) mod stateless;

use crate::context::{ExecContext, Msg};
use crossbeam::channel::Sender;
use sip_common::{Batch, OpId, Result, Row, Value};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Buffers output rows, applies this operator's filter tap once per batch,
/// updates metrics, and pushes batches downstream. A failed send means the
/// consumer is gone (query cancelled or failed elsewhere); the emitter turns
/// into a sink so the operator can wind down cleanly.
pub(crate) struct Emitter<'a> {
    ctx: &'a Arc<ExecContext>,
    op: OpId,
    out: Sender<Msg>,
    buf: Vec<Row>,
    cancelled: bool,
}

impl<'a> Emitter<'a> {
    pub(crate) fn new(ctx: &'a Arc<ExecContext>, op: OpId, out: Sender<Msg>) -> Self {
        let cap = ctx.options.batch_size;
        Emitter {
            ctx,
            op,
            out,
            buf: Vec::with_capacity(cap),
            cancelled: false,
        }
    }

    /// True once the downstream has hung up.
    pub(crate) fn cancelled(&self) -> bool {
        self.cancelled
    }

    /// Queue one output row.
    pub(crate) fn push(&mut self, row: Row) -> Result<()> {
        if self.cancelled {
            return Ok(());
        }
        self.buf.push(row);
        if self.buf.len() >= self.ctx.options.batch_size {
            self.flush()?;
        }
        Ok(())
    }

    /// Apply the tap and send buffered rows.
    pub(crate) fn flush(&mut self) -> Result<()> {
        if self.buf.is_empty() || self.cancelled {
            self.buf.clear();
            return Ok(());
        }
        let mut rows = std::mem::replace(&mut self.buf, Vec::with_capacity(self.ctx.options.batch_size));
        let tap = self.ctx.taps[self.op.index()].snapshot();
        if !tap.is_empty() {
            let before = rows.len();
            rows.retain(|r| tap.iter().all(|f| f.admits(r)));
            let m = self.ctx.hub.op(self.op);
            m.aip_probed.fetch_add(before as u64, Ordering::Relaxed);
            m.aip_dropped
                .fetch_add((before - rows.len()) as u64, Ordering::Relaxed);
        }
        if rows.is_empty() {
            return Ok(());
        }
        self.ctx
            .hub
            .op(self.op)
            .rows_out
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        if self.out.send(Msg::Batch(Batch::new(rows))).is_err() {
            self.cancelled = true;
        }
        Ok(())
    }

    /// Flush and send EOF.
    pub(crate) fn finish(mut self) -> Result<()> {
        self.flush()?;
        let _ = self.out.send(Msg::Eof);
        self.ctx
            .hub
            .op(self.op)
            .finished
            .store(true, Ordering::Relaxed);
        Ok(())
    }
}

/// Extract `(digest, key values)` for the key columns, or `None` when any
/// key is NULL (SQL: NULL keys never join).
#[inline]
pub(crate) fn key_of(row: &Row, positions: &[usize]) -> Option<(u64, Vec<Value>)> {
    for &p in positions {
        if row.get(p).is_null() {
            return None;
        }
    }
    Some((row.key_hash(positions), row.key_values(positions)))
}

/// Record arrival metrics for an input.
#[inline]
pub(crate) fn count_in(ctx: &ExecContext, op: OpId, input: usize, n: usize) {
    ctx.hub.op(op).rows_in[input].fetch_add(n as u64, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_of_rejects_nulls() {
        let r = Row::new(vec![Value::Int(1), Value::Null]);
        assert!(key_of(&r, &[0]).is_some());
        assert!(key_of(&r, &[1]).is_none());
        assert!(key_of(&r, &[0, 1]).is_none());
    }

    #[test]
    fn key_of_is_stable() {
        let a = Row::new(vec![Value::Int(7), Value::str("x")]);
        let b = Row::new(vec![Value::Int(7), Value::str("y")]);
        assert_eq!(key_of(&a, &[0]).unwrap().0, key_of(&b, &[0]).unwrap().0);
        assert_eq!(
            key_of(&a, &[0]).unwrap().1,
            vec![Value::Int(7)]
        );
    }
}
