//! Operator implementations. One OS thread runs each operator; rows flow
//! through bounded channels, giving the nondeterministic, backpressured
//! scheduling that push-style engines rely on (§I).

pub(crate) mod aggregate;
pub(crate) mod exchange;
pub(crate) mod hash_join;
pub(crate) mod scan;
pub(crate) mod semi_join;
pub(crate) mod shuffle;
pub(crate) mod stateless;

use crate::context::{ExecContext, Msg};
use crossbeam::channel::Sender;
use sip_common::{Batch, OpId, Result, Row, Value};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Buffers output rows, applies this operator's filter tap once per batch,
/// updates metrics, and pushes batches downstream. A failed send means the
/// consumer is gone (query cancelled or failed elsewhere); the emitter turns
/// into a sink so the operator can wind down cleanly.
pub(crate) struct Emitter<'a> {
    ctx: &'a Arc<ExecContext>,
    op: OpId,
    out: Sender<Msg>,
    buf: Vec<Row>,
    cancelled: bool,
}

impl<'a> Emitter<'a> {
    pub(crate) fn new(ctx: &'a Arc<ExecContext>, op: OpId, out: Sender<Msg>) -> Self {
        let cap = ctx.options.batch_size;
        Emitter {
            ctx,
            op,
            out,
            buf: Vec::with_capacity(cap),
            cancelled: false,
        }
    }

    /// True once the downstream has hung up.
    pub(crate) fn cancelled(&self) -> bool {
        self.cancelled
    }

    /// Queue one output row.
    pub(crate) fn push(&mut self, row: Row) -> Result<()> {
        if self.cancelled {
            return Ok(());
        }
        self.buf.push(row);
        if self.buf.len() >= self.ctx.options.batch_size {
            self.flush()?;
        }
        Ok(())
    }

    /// Apply the tap and send buffered rows.
    ///
    /// The tap is snapshotted and the AIP counters are updated **once per
    /// batch** (per-row atomics would dominate the probe cost), and the
    /// cancelled path neither snapshots nor allocates a replacement buffer
    /// — a drained operator winding down after downstream hangup does no
    /// further work here.
    pub(crate) fn flush(&mut self) -> Result<()> {
        if self.buf.is_empty() || self.cancelled {
            self.buf.clear();
            return Ok(());
        }
        let mut rows = std::mem::take(&mut self.buf);
        let tap = self.ctx.taps[self.op.index()].snapshot();
        if !tap.is_empty() {
            // Per-batch counting: accumulate per-filter tallies locally and
            // publish each with a single atomic add per batch. A row counts
            // as probed only when at least one filter actually applied —
            // partition-scoped filters pass foreign rows untouched.
            let before = rows.len();
            let mut probed_rows = 0u64;
            let mut counts = vec![(0u64, 0u64); tap.len()];
            rows.retain(|r| {
                let mut probed_any = false;
                let mut keep = true;
                for (f, c) in tap.iter().zip(counts.iter_mut()) {
                    match f.probe_quiet(r) {
                        None => {} // outside the filter's partition scope
                        Some(true) => {
                            probed_any = true;
                            c.0 += 1;
                        }
                        Some(false) => {
                            probed_any = true;
                            c.0 += 1;
                            c.1 += 1;
                            keep = false;
                            break;
                        }
                    }
                }
                if probed_any {
                    probed_rows += 1;
                }
                keep
            });
            for (f, (p, d)) in tap.iter().zip(counts) {
                f.probed.fetch_add(p, Ordering::Relaxed);
                f.dropped.fetch_add(d, Ordering::Relaxed);
            }
            let m = self.ctx.hub.op(self.op);
            m.aip_probed.fetch_add(probed_rows, Ordering::Relaxed);
            m.aip_dropped
                .fetch_add((before - rows.len()) as u64, Ordering::Relaxed);
        }
        if rows.is_empty() {
            // The tap dropped the whole batch: hand the (emptied, still
            // allocated) buffer back so the next batch reuses its capacity.
            self.buf = rows;
            return Ok(());
        }
        self.ctx
            .hub
            .op(self.op)
            .rows_out
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        if self.out.send(Msg::Batch(Batch::new(rows))).is_err() {
            self.cancelled = true;
        } else {
            // Only a live emitter needs a fresh buffer at batch capacity.
            self.buf = Vec::with_capacity(self.ctx.options.batch_size);
        }
        Ok(())
    }

    /// Flush and send EOF.
    pub(crate) fn finish(mut self) -> Result<()> {
        self.flush()?;
        let _ = self.out.send(Msg::Eof);
        self.ctx
            .hub
            .op(self.op)
            .finished
            .store(true, Ordering::Relaxed);
        Ok(())
    }
}

/// Extract `(digest, key values)` for the key columns, or `None` when any
/// key is NULL (SQL: NULL keys never join).
#[inline]
pub(crate) fn key_of(row: &Row, positions: &[usize]) -> Option<(u64, Vec<Value>)> {
    for &p in positions {
        if row.get(p).is_null() {
            return None;
        }
    }
    Some((row.key_hash(positions), row.key_values(positions)))
}

/// Record arrival metrics for an input.
#[inline]
pub(crate) fn count_in(ctx: &ExecContext, op: OpId, input: usize, n: usize) {
    ctx.hub.op(op).rows_in[input].fetch_add(n as u64, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::lower;
    use crate::taps::MergePolicy;
    use crate::InjectedFilter;
    use sip_common::{hash_key, DataType, Field, Schema};
    use sip_data::{Catalog, Table};
    use sip_filter::{AipSetBuilder, AipSetKind};
    use sip_plan::QueryBuilder;

    fn scan_ctx(batch_size: usize) -> Arc<ExecContext> {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let rows: Vec<Row> = (0..8).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let mut c = Catalog::new();
        c.add(Table::new("t", schema, vec![], vec![], rows).unwrap());
        let mut q = QueryBuilder::new(&c);
        let t = q.scan("t", "t", &["k"]).unwrap();
        let plan = lower(t.plan(), q.attrs().clone(), &c).unwrap();
        ExecContext::new(
            Arc::new(plan),
            crate::context::ExecOptions {
                batch_size,
                ..Default::default()
            },
        )
    }

    fn keys_filter(keys: &[i64]) -> InjectedFilter {
        let mut b = AipSetBuilder::new(AipSetKind::Hash, keys.len().max(1), 0.05, 1);
        for &k in keys {
            let key = vec![Value::Int(k)];
            b.insert(hash_key(&key), &key);
        }
        InjectedFilter::new("test", vec![0], Arc::new(b.finish()))
    }

    #[test]
    fn flush_applies_tap_and_counts_once_per_batch() {
        let ctx = scan_ctx(64);
        let op = OpId(0);
        ctx.inject_filter(op, keys_filter(&[1, 3]), MergePolicy::Stack);
        let (tx, rx) = crossbeam::channel::bounded(4);
        let mut e = Emitter::new(&ctx, op, tx);
        for i in 0..4 {
            e.push(Row::new(vec![Value::Int(i)])).unwrap();
        }
        e.flush().unwrap();
        // 4 probed, 2 dropped — tallied exactly once for the whole batch,
        // on both the hub and the per-filter counters.
        let m = ctx.hub.op(op);
        assert_eq!(m.aip_probed.load(Ordering::Relaxed), 4);
        assert_eq!(m.aip_dropped.load(Ordering::Relaxed), 2);
        let chain = ctx.taps[op.index()].snapshot();
        assert_eq!(chain[0].probed.load(Ordering::Relaxed), 4);
        assert_eq!(chain[0].dropped.load(Ordering::Relaxed), 2);
        match rx.try_recv() {
            Ok(Msg::Batch(b)) => assert_eq!(b.len(), 2),
            other => panic!("expected surviving batch, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_emitter_stops_probing_and_buffering() {
        let ctx = scan_ctx(2);
        let op = OpId(0);
        ctx.inject_filter(op, keys_filter(&[0, 1, 2, 3]), MergePolicy::Stack);
        let (tx, rx) = crossbeam::channel::bounded(4);
        let mut e = Emitter::new(&ctx, op, tx);
        drop(rx); // downstream hangs up
        e.push(Row::new(vec![Value::Int(0)])).unwrap();
        e.push(Row::new(vec![Value::Int(1)])).unwrap(); // batch full → flush → send fails
        assert!(e.cancelled());
        let probed_at_cancel = ctx.hub.op(op).aip_probed.load(Ordering::Relaxed);
        let rows_out_at_cancel = ctx.hub.op(op).rows_out.load(Ordering::Relaxed);
        // Everything after cancellation is a no-op: no buffering, no tap
        // snapshots, no counter movement.
        for i in 0..100 {
            e.push(Row::new(vec![Value::Int(i)])).unwrap();
        }
        e.flush().unwrap();
        assert_eq!(
            ctx.hub.op(op).aip_probed.load(Ordering::Relaxed),
            probed_at_cancel
        );
        assert_eq!(
            ctx.hub.op(op).rows_out.load(Ordering::Relaxed),
            rows_out_at_cancel
        );
        e.finish().unwrap();
    }

    #[test]
    fn key_of_rejects_nulls() {
        let r = Row::new(vec![Value::Int(1), Value::Null]);
        assert!(key_of(&r, &[0]).is_some());
        assert!(key_of(&r, &[1]).is_none());
        assert!(key_of(&r, &[0, 1]).is_none());
    }

    #[test]
    fn key_of_is_stable() {
        let a = Row::new(vec![Value::Int(7), Value::str("x")]);
        let b = Row::new(vec![Value::Int(7), Value::str("y")]);
        assert_eq!(key_of(&a, &[0]).unwrap().0, key_of(&b, &[0]).unwrap().0);
        assert_eq!(key_of(&a, &[0]).unwrap().1, vec![Value::Int(7)]);
    }
}
