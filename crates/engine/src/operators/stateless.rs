//! Stateless unary operators: filter and project — batch kernels over
//! selection vectors. Surviving rows are compacted in place and forwarded
//! whole-batch, so the steady state moves allocations downstream instead of
//! creating them.
//!
//! Both operators are layout-preserving over columnar input: a filter with
//! a vectorized predicate shape ([`sip_expr::eval_predicate_mask`]) probes
//! the typed column slices directly and gathers survivors per column; a
//! projection that is pure column selection (`Expr::Col` per output) is a
//! metadata-only [`select_columns`](sip_common::ColumnarBatch::select_columns).
//! Shapes without a columnar kernel (arithmetic, computed projections)
//! convert the batch to rows and take the row path — same results, same
//! error behavior.

use super::{count_in, Emitter, OpGuard};
use crate::context::{ExecContext, Msg};
use crate::physical::PhysKind;
use crossbeam::channel::{Receiver, Sender};
use sip_common::trace::Phase;
use sip_common::{exec_err, Batch, ColumnarBatch, OpId, Result, Row, SelVec};
use sip_expr::{eval_predicate_mask, Expr};
use std::sync::Arc;

/// Run a `Filter` node.
pub(crate) fn run_filter(
    ctx: &Arc<ExecContext>,
    op: OpId,
    input: Receiver<Msg>,
    out: Sender<Msg>,
) -> Result<()> {
    let pred = match &ctx.plan.node(op).kind {
        PhysKind::Filter { predicate } => predicate.clone(),
        other => return Err(exec_err!("run_filter on {}", other.name())),
    };
    let mut emitter = Emitter::new(ctx, op, out).outside_compute();
    let mut guard = OpGuard::new(ctx, op);
    let mut tr = ctx.tracer(op);
    let mut sel = SelVec::default();
    let mut mask: Vec<bool> = Vec::new();
    // Per-batch row fallback for predicate shapes with no columnar kernel.
    let filter_rows = |b: &mut Batch, sel: &mut SelVec| -> Result<()> {
        sel.clear();
        for (i, row) in b.rows.iter().enumerate() {
            if pred.eval_bool(row)? {
                sel.push(i as u32);
            }
        }
        sel.compact(&mut b.rows);
        Ok(())
    };
    loop {
        let t0 = tr.begin();
        let msg = input.recv();
        tr.end(Phase::ChannelRecv, t0);
        match msg {
            Ok(Msg::Batch(mut b)) => {
                guard.on_batch()?;
                count_in(ctx, op, 0, b.len());
                let t0 = tr.begin();
                filter_rows(&mut b, &mut sel)?;
                tr.end(Phase::Compute, t0);
                emitter.push_rows(b.rows)?;
                emitter.flush()?;
            }
            Ok(Msg::Cols(c)) => {
                guard.on_batch()?;
                count_in(ctx, op, 0, c.len());
                let t0 = tr.begin();
                if eval_predicate_mask(&pred, &c, &mut mask) {
                    sel.clear();
                    for (i, &keep) in mask.iter().enumerate() {
                        if keep {
                            sel.push(i as u32);
                        }
                    }
                    let kept = if sel.len() == c.len() {
                        c
                    } else {
                        c.gather(sel.as_slice())
                    };
                    tr.end(Phase::Compute, t0);
                    emitter.push_cols(kept)?;
                } else {
                    let mut b = c.to_batch();
                    filter_rows(&mut b, &mut sel)?;
                    tr.end(Phase::Compute, t0);
                    emitter.push_rows(b.rows)?;
                    emitter.flush()?;
                }
            }
            Ok(Msg::Eof) => break,
            Err(_) => return Err(ctx.disconnect_err(op)),
        }
        if emitter.cancelled() {
            break;
        }
    }
    emitter.finish()?;
    tr.flush();
    Ok(())
}

/// Run a `Project` node.
pub(crate) fn run_project(
    ctx: &Arc<ExecContext>,
    op: OpId,
    input: Receiver<Msg>,
    out: Sender<Msg>,
) -> Result<()> {
    let exprs = match &ctx.plan.node(op).kind {
        PhysKind::Project { exprs } => exprs.clone(),
        other => return Err(exec_err!("run_project on {}", other.name())),
    };
    // A projection whose every output is a bare column reference is pure
    // column selection — metadata-only over columnar input.
    let selection: Option<Vec<usize>> = exprs
        .iter()
        .map(|e| match e {
            Expr::Col(c) => Some(*c),
            _ => None,
        })
        .collect();
    let mut emitter = Emitter::new(ctx, op, out).outside_compute();
    let mut guard = OpGuard::new(ctx, op);
    let mut tr = ctx.tracer(op);
    let project_rows = |rows: &[Row]| -> Result<Vec<Row>> {
        let mut out_rows = Vec::with_capacity(rows.len());
        for row in rows {
            let mut vals = Vec::with_capacity(exprs.len());
            for e in &exprs {
                vals.push(e.eval(row)?);
            }
            out_rows.push(Row::new(vals));
        }
        Ok(out_rows)
    };
    loop {
        let t0 = tr.begin();
        let msg = input.recv();
        tr.end(Phase::ChannelRecv, t0);
        match msg {
            Ok(Msg::Batch(b)) => {
                guard.on_batch()?;
                count_in(ctx, op, 0, b.len());
                let t0 = tr.begin();
                let rows = project_rows(&b.rows)?;
                tr.end(Phase::Compute, t0);
                emitter.push_rows(rows)?;
                emitter.flush()?;
            }
            Ok(Msg::Cols(c)) => {
                guard.on_batch()?;
                count_in(ctx, op, 0, c.len());
                match &selection {
                    Some(cols) => {
                        let t0 = tr.begin();
                        let projected: ColumnarBatch = c.select_columns(cols);
                        tr.end(Phase::Compute, t0);
                        emitter.push_cols(projected)?;
                    }
                    None => {
                        let t0 = tr.begin();
                        let rows = project_rows(&c.to_rows())?;
                        tr.end(Phase::Compute, t0);
                        emitter.push_rows(rows)?;
                        emitter.flush()?;
                    }
                }
            }
            Ok(Msg::Eof) => break,
            Err(_) => return Err(ctx.disconnect_err(op)),
        }
        if emitter.cancelled() {
            break;
        }
    }
    emitter.finish()?;
    tr.flush();
    Ok(())
}
