//! Stateless unary operators: filter and project — batch kernels over
//! selection vectors. Surviving rows are compacted in place and forwarded
//! whole-batch, so the steady state moves allocations downstream instead of
//! creating them.

use super::{count_in, Emitter};
use crate::context::{ExecContext, Msg};
use crate::physical::PhysKind;
use crossbeam::channel::{Receiver, Sender};
use sip_common::trace::Phase;
use sip_common::{exec_err, OpId, Result, Row, SelVec};
use std::sync::Arc;

/// Run a `Filter` node.
pub(crate) fn run_filter(
    ctx: &Arc<ExecContext>,
    op: OpId,
    input: Receiver<Msg>,
    out: Sender<Msg>,
) -> Result<()> {
    let pred = match &ctx.plan.node(op).kind {
        PhysKind::Filter { predicate } => predicate.clone(),
        other => return Err(exec_err!("run_filter on {}", other.name())),
    };
    let mut emitter = Emitter::new(ctx, op, out).outside_compute();
    let mut tr = ctx.tracer(op);
    let mut sel = SelVec::default();
    loop {
        let t0 = tr.begin();
        let msg = input.recv();
        tr.end(Phase::ChannelRecv, t0);
        let Ok(Msg::Batch(mut b)) = msg else { break };
        count_in(ctx, op, 0, b.len());
        let t0 = tr.begin();
        sel.clear();
        for (i, row) in b.rows.iter().enumerate() {
            if pred.eval_bool(row)? {
                sel.push(i as u32);
            }
        }
        sel.compact(&mut b.rows);
        tr.end(Phase::Compute, t0);
        emitter.push_rows(b.rows)?;
        emitter.flush()?;
        if emitter.cancelled() {
            break;
        }
    }
    emitter.finish()?;
    tr.flush();
    Ok(())
}

/// Run a `Project` node.
pub(crate) fn run_project(
    ctx: &Arc<ExecContext>,
    op: OpId,
    input: Receiver<Msg>,
    out: Sender<Msg>,
) -> Result<()> {
    let exprs = match &ctx.plan.node(op).kind {
        PhysKind::Project { exprs } => exprs.clone(),
        other => return Err(exec_err!("run_project on {}", other.name())),
    };
    let mut emitter = Emitter::new(ctx, op, out).outside_compute();
    let mut tr = ctx.tracer(op);
    loop {
        let t0 = tr.begin();
        let msg = input.recv();
        tr.end(Phase::ChannelRecv, t0);
        let Ok(Msg::Batch(b)) = msg else { break };
        count_in(ctx, op, 0, b.len());
        let t0 = tr.begin();
        let mut rows = Vec::with_capacity(b.len());
        for row in &b.rows {
            let mut vals = Vec::with_capacity(exprs.len());
            for e in &exprs {
                vals.push(e.eval(row)?);
            }
            rows.push(Row::new(vals));
        }
        tr.end(Phase::Compute, t0);
        emitter.push_rows(rows)?;
        emitter.flush()?;
        if emitter.cancelled() {
            break;
        }
    }
    emitter.finish()?;
    tr.flush();
    Ok(())
}
