//! Table scans with delay simulation, plus external-source forwarding.

use super::{count_in, Emitter};
use crate::context::{ExecContext, Msg};
use crate::delay::DelayState;
use crate::physical::PhysKind;
use crossbeam::channel::{Receiver, Sender};
use sip_common::trace::Phase;
use sip_common::{exec_err, DigestBuffer, OpId, Result, Row, SelVec};
use std::sync::Arc;

/// Run a `Scan` node: project the table's rows into the scan layout,
/// honoring any configured delay model, and stream them out.
///
/// When the scan carries a [`ScanPartition`](crate::physical::ScanPartition),
/// only rows hashing to its partition are shipped, and the delay model is
/// charged per *shipped* row — the partition predicate is pushed down to the
/// (possibly remote, slow) source, which is what lets `dop` partitioned
/// scans overlap a slow source's transmission latency. Ownership is decided
/// with one digest pass per chunk and a selection vector, not per-row
/// re-hashing.
pub(crate) fn run_scan(ctx: &Arc<ExecContext>, op: OpId, out: Sender<Msg>) -> Result<()> {
    let node = ctx.plan.node(op);
    let (table, cols, binding, part) = match &node.kind {
        PhysKind::Scan {
            table,
            cols,
            binding,
            part,
        } => (table.clone(), cols.clone(), binding.clone(), part.clone()),
        other => return Err(exec_err!("run_scan on {}", other.name())),
    };
    let mut delay = ctx
        .options
        .delay_for(&binding, table.name())
        .cloned()
        .map(DelayState::new);
    let mut emitter = Emitter::new(ctx, op, out).outside_compute();
    let mut tr = ctx.tracer(op);
    let batch = ctx.options.batch_size;
    let mut digests = DigestBuffer::default();
    let mut sel = SelVec::default();
    let mut offset = 0u64;
    for chunk in table.rows().chunks(batch) {
        if emitter.cancelled() {
            break;
        }
        let chunk_len = chunk.len() as u64;
        let t0 = tr.begin();
        let mut rows: Vec<Row> = chunk.iter().map(|r| r.project(&cols)).collect();
        match &part {
            // Rowid split: ownership by table row index — perfectly
            // balanced regardless of the key distribution; used only for
            // streams a shuffle mesh re-deals above.
            Some(p) if p.rowid => {
                sel.fill_identity(rows.len());
                sel.retain(|i| p.owns_row(0, offset + i as u64));
                sel.compact(&mut rows);
            }
            // Hash split: one digest pass decides ownership for the whole
            // chunk, so the delay model charges only this partition's
            // share of shipped rows.
            Some(p) => {
                digests.compute(&rows, &[p.col]);
                sel.fill_identity(rows.len());
                let d = digests.digests();
                sel.retain(|i| p.owns(d[i as usize]));
                sel.compact(&mut rows);
            }
            None => {}
        }
        // The span covers projection + partition filtering only — the
        // simulated source delay below is transmission latency, not work.
        tr.end(Phase::Compute, t0);
        offset += chunk_len;
        if let Some(d) = delay.as_mut() {
            let pause = d.advance(rows.len() as u64);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
        emitter.push_rows(rows)?;
        // Emit at batch granularity so delays interleave with consumption.
        emitter.flush()?;
    }
    emitter.finish()?;
    tr.flush();
    Ok(())
}

/// Run an `ExternalSource` node: forward batches from a channel provided by
/// the harness (the receiving end of a simulated network link). Whole
/// batches pass straight through the emitter.
pub(crate) fn run_external(ctx: &Arc<ExecContext>, op: OpId, out: Sender<Msg>) -> Result<()> {
    let rx: Receiver<Msg> = ctx
        .options
        .external_inputs
        .lock()
        .remove(&op.0)
        .ok_or_else(|| exec_err!("no external input registered for {op}"))?;
    let mut emitter = Emitter::new(ctx, op, out).outside_compute();
    let mut tr = ctx.tracer(op);
    loop {
        let t0 = tr.begin();
        let msg = rx.recv();
        tr.end(Phase::ChannelRecv, t0);
        let Ok(Msg::Batch(b)) = msg else { break };
        count_in(ctx, op, 0, b.len());
        emitter.push_rows(b.rows)?;
        emitter.flush()?;
    }
    emitter.finish()?;
    tr.flush();
    Ok(())
}

/// Project helper for tests.
#[allow(dead_code)]
pub(crate) fn project_row(row: &Row, cols: &[usize]) -> Row {
    row.project(cols)
}
