//! Table scans with delay simulation, plus external-source forwarding.

use super::{count_in, Emitter, OpGuard};
use crate::context::{ExecContext, Msg};
use crate::delay::DelayState;
use crate::physical::PhysKind;
use crossbeam::channel::{Receiver, Sender};
use sip_common::trace::Phase;
use sip_common::{exec_err, DigestBuffer, OpId, Result, Row, SelVec};
use std::sync::Arc;

/// Run a `Scan` node: stream the table's columnar storage, honoring any
/// configured delay model.
///
/// The hot path is metadata-only: each chunk is a [`slice`] of the table's
/// column vectors and the scan layout's projection a [`select_columns`] —
/// no per-row value clones. Rows are materialized only when a partition
/// predicate actually drops rows (a per-column gather of the survivors).
///
/// [`slice`]: sip_common::ColumnarBatch::slice
/// [`select_columns`]: sip_common::ColumnarBatch::select_columns
///
/// When the scan carries a [`ScanPartition`](crate::physical::ScanPartition),
/// only rows hashing to its partition are shipped, and the delay model is
/// charged per *shipped* row — the partition predicate is pushed down to the
/// (possibly remote, slow) source, which is what lets `dop` partitioned
/// scans overlap a slow source's transmission latency. Ownership is decided
/// with one digest pass per chunk and a selection vector, not per-row
/// re-hashing.
pub(crate) fn run_scan(ctx: &Arc<ExecContext>, op: OpId, out: Sender<Msg>) -> Result<()> {
    let node = ctx.plan.node(op);
    let (table, cols, binding, part) = match &node.kind {
        PhysKind::Scan {
            table,
            cols,
            binding,
            part,
        } => (table.clone(), cols.clone(), binding.clone(), part.clone()),
        other => return Err(exec_err!("run_scan on {}", other.name())),
    };
    let mut delay = ctx
        .options
        .delay_for(&binding, table.name())
        .cloned()
        .map(DelayState::new);
    let mut emitter = Emitter::new(ctx, op, out).outside_compute();
    let mut guard = OpGuard::new(ctx, op);
    let mut tr = ctx.tracer(op);
    let batch = ctx.options.batch_size;
    let mut digests = DigestBuffer::default();
    let mut sel = SelVec::default();
    let source = table.columns();
    let total = source.len();
    let mut offset = 0usize;
    while offset < total {
        if emitter.cancelled() {
            break;
        }
        guard.on_batch()?;
        let n = batch.min(total - offset);
        let t0 = tr.begin();
        let mut chunk = source.slice(offset, n).select_columns(&cols);
        match &part {
            // Rowid split: ownership by table row index — perfectly
            // balanced regardless of the key distribution; used only for
            // streams a shuffle mesh re-deals above.
            Some(p) if p.rowid => {
                sel.fill_identity(n);
                sel.retain(|i| p.owns_row(0, (offset + i as usize) as u64));
                if sel.len() < n {
                    chunk = chunk.gather(sel.as_slice());
                }
            }
            // Hash split: one digest pass decides ownership for the whole
            // chunk, so the delay model charges only this partition's
            // share of shipped rows.
            Some(p) => {
                digests.compute_cols(&chunk, &[p.col]);
                sel.fill_identity(n);
                let d = digests.digests();
                sel.retain(|i| p.owns(d[i as usize]));
                if sel.len() < n {
                    chunk = chunk.gather(sel.as_slice());
                }
            }
            None => {}
        }
        // The span covers projection + partition filtering only — the
        // simulated source delay below is transmission latency, not work.
        tr.end(Phase::Compute, t0);
        offset += n;
        if let Some(d) = delay.as_mut() {
            let pause = d.advance(chunk.len() as u64);
            // A cancellable sleep: a slow simulated source must not hold
            // a failed or deadline-blown query open for its full delay.
            if !pause.is_zero() && !ctx.cancel.sleep_cancellable(pause) {
                return ctx.check_cancel(op);
            }
        }
        // Emit at batch granularity so delays interleave with consumption.
        emitter.push_cols(chunk)?;
    }
    emitter.finish()?;
    tr.flush();
    Ok(())
}

/// Run an `ExternalSource` node: forward batches from a channel provided by
/// the harness (the receiving end of a simulated network link). Whole
/// batches pass straight through the emitter, row-shaped and columnar
/// alike — the wire format is whatever the feeding site chose.
pub(crate) fn run_external(ctx: &Arc<ExecContext>, op: OpId, out: Sender<Msg>) -> Result<()> {
    let rx: Receiver<Msg> = ctx
        .options
        .external_inputs
        .lock()
        .remove(&op.0)
        .ok_or_else(|| exec_err!("no external input registered for {op}"))?;
    let mut emitter = Emitter::new(ctx, op, out).outside_compute();
    let mut guard = OpGuard::new(ctx, op);
    let mut tr = ctx.tracer(op);
    loop {
        let t0 = tr.begin();
        let msg = rx.recv();
        tr.end(Phase::ChannelRecv, t0);
        match msg {
            Ok(Msg::Batch(b)) => {
                guard.on_batch()?;
                count_in(ctx, op, 0, b.len());
                emitter.push_rows(b.rows)?;
                emitter.flush()?;
            }
            Ok(Msg::Cols(c)) => {
                guard.on_batch()?;
                count_in(ctx, op, 0, c.len());
                emitter.push_cols(c)?;
            }
            Ok(Msg::Eof) => break,
            // The feeder died mid-stream (link failure past its retry
            // budget, feeder panic): hard error, not end-of-data.
            Err(_) => return Err(ctx.disconnect_err(op)),
        }
    }
    emitter.finish()?;
    tr.flush();
    Ok(())
}

/// Project helper for tests.
#[allow(dead_code)]
pub(crate) fn project_row(row: &Row, cols: &[usize]) -> Row {
    row.project(cols)
}
