//! Table scans with delay simulation, plus external-source forwarding.

use super::{count_in, Emitter};
use crate::context::{ExecContext, Msg};
use crate::delay::DelayState;
use crate::physical::PhysKind;
use crossbeam::channel::{Receiver, Sender};
use sip_common::{exec_err, OpId, Result, Row};
use std::sync::Arc;

/// Run a `Scan` node: project the table's rows into the scan layout,
/// honoring any configured delay model, and stream them out.
///
/// When the scan carries a [`ScanPartition`], only rows hashing to its
/// partition are shipped, and the delay model is charged per *shipped* row
/// — the partition predicate is pushed down to the (possibly remote, slow)
/// source, which is what lets `dop` partitioned scans overlap a slow
/// source's transmission latency.
pub(crate) fn run_scan(ctx: &Arc<ExecContext>, op: OpId, out: Sender<Msg>) -> Result<()> {
    let node = ctx.plan.node(op);
    let (table, cols, binding, part) = match &node.kind {
        PhysKind::Scan {
            table,
            cols,
            binding,
            part,
        } => (table.clone(), cols.clone(), binding.clone(), part.clone()),
        other => return Err(exec_err!("run_scan on {}", other.name())),
    };
    let mut delay = ctx
        .options
        .delay_for(&binding, table.name())
        .cloned()
        .map(DelayState::new);
    let mut emitter = Emitter::new(ctx, op, out);
    let batch = ctx.options.batch_size;
    for chunk in table.rows().chunks(batch) {
        if emitter.cancelled() {
            break;
        }
        match &part {
            None => {
                // Serial scan: rows go straight to the emitter, delay
                // charged for the whole chunk up front.
                if let Some(d) = delay.as_mut() {
                    let pause = d.advance(chunk.len() as u64);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                for row in chunk {
                    emitter.push(row.project(&cols))?;
                }
            }
            Some(p) => {
                // Partitioned scan: count the shipped rows first so the
                // delay model charges only this partition's share.
                let mut rows: Vec<Row> = Vec::with_capacity(chunk.len());
                for row in chunk {
                    let projected = row.project(&cols);
                    if p.owns(projected.key_hash(&[p.col])) {
                        rows.push(projected);
                    }
                }
                if let Some(d) = delay.as_mut() {
                    let pause = d.advance(rows.len() as u64);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                for row in rows {
                    emitter.push(row)?;
                }
            }
        }
        // Emit at batch granularity so delays interleave with consumption.
        emitter.flush()?;
    }
    emitter.finish()
}

/// Run an `ExternalSource` node: forward batches from a channel provided by
/// the harness (the receiving end of a simulated network link).
pub(crate) fn run_external(ctx: &Arc<ExecContext>, op: OpId, out: Sender<Msg>) -> Result<()> {
    let rx: Receiver<Msg> = ctx
        .options
        .external_inputs
        .lock()
        .remove(&op.0)
        .ok_or_else(|| exec_err!("no external input registered for {op}"))?;
    let mut emitter = Emitter::new(ctx, op, out);
    while let Ok(msg) = rx.recv() {
        let Msg::Batch(b) = msg else { break };
        count_in(ctx, op, 0, b.len());
        for row in b.rows {
            emitter.push(row)?;
        }
        emitter.flush()?;
    }
    emitter.finish()
}

/// Project helper for tests.
#[allow(dead_code)]
pub(crate) fn project_row(row: &Row, cols: &[usize]) -> Row {
    row.project(cols)
}
