//! The recovery layer: fragment replay, straggler speculation, and the
//! whole-run retry loop.
//!
//! PR 9's fail-fast machinery guarantees a failed run dies *cleanly*: an
//! attributed error, no partial `Ok`, no leaked threads. This module
//! turns those clean deaths into repair opportunities. The key enabler
//! is determinism: a fragment — the stateless source chain
//! `Scan → (Filter|Project)*` feeding a shuffle-mesh writer — produces
//! an *identical batch sequence* every time it runs against the same
//! frozen filter chain (scans chunk deterministically, the columnar
//! pipeline never re-coalesces, AIP sets are immutable behind their
//! `Arc`s). So a failed fragment can simply be re-executed from its
//! sources, with a per-batch commit gate at the writer-input seam
//! guaranteeing each batch index crosses the seam **exactly once** no
//! matter how many attempts (sequential retries or concurrent
//! speculative duplicates) replay it.
//!
//! ## Isolation: fragment views
//!
//! Each attempt runs the *real* operator implementations
//! ([`crate::exec::spawn_operator`]) against an isolated
//! [`ExecContext::fragment_view`]: fresh metrics hub, fresh cancel
//! token, fresh error slots, and per-attempt *replicas* of the frozen
//! AIP filters (shared working sets, private counters). A failed
//! attempt's partially-admitted counters are quarantined with its view
//! and dropped; only the winning attempt's accounting — a complete,
//! as-if-clean-run history, since the winner replayed the whole stream
//! — folds into the global hub, exactly once. Retries therefore never
//! double-admit: the admit-parity harnesses see one clean run.
//!
//! ## The seam gate
//!
//! All seam sends happen under one mutex holding `(committed, done)`.
//! An attempt may forward batch `i` only while `committed == i`, and
//! `Eof` only while `!done` — so commit order is sealed before `Eof`
//! goes out even when a speculative duplicate races the primary, and a
//! loser that falls behind silently drops batches a sibling already
//! committed.
//!
//! ## What fragments do NOT cover
//!
//! Failures at stateful operators (joins, aggregates, the mesh writers
//! themselves) are healed by the coarser [`run_with_recovery`] loop:
//! the whole run is re-executed from the deterministic sources with
//! fresh options. `AdaptiveExec` gets stage-checkpoint recovery from
//! the same loop for free — its stage 2 executes against the
//! materialized `__stage1` table, so a stage-2 retry never re-runs
//! stage 1.

use crate::context::{ExecContext, ExecOptions, Msg};
use crate::exec::QueryOutput;
use crate::monitor::ExecMonitor;
use crate::physical::{PhysKind, PhysPlan};
use crate::taps::{FilterTap, InjectedFilter};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use sip_common::cancel::CancelToken;
use sip_common::error::ExecFailure;
use sip_common::retry::{self, RetryState};
use sip_common::{OpId, Result, SipError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A replayable operator subtree: the maximal stateless single-consumer
/// chain below one shuffle-mesh writer.
#[derive(Clone, Debug)]
pub(crate) struct Fragment {
    /// Chain members in execution order: the scan first, the operator
    /// feeding the writer last.
    pub ops: Vec<OpId>,
    /// The chain's output operator — its sender is the mesh seam.
    pub top: OpId,
}

/// Find every replayable fragment of `plan`: for each `ShuffleWrite`,
/// walk its tree input down through single-consumer `Filter`/`Project`
/// nodes to a `Scan`. Chains that hit anything stateful, multi-consumer,
/// or externally fed (an `ExternalSource` cannot be replayed — its feed
/// channel was consumed) are not fragments; failures there fall through
/// to whole-run retry.
pub(crate) fn fragments(plan: &PhysPlan) -> Vec<Fragment> {
    let mut consumers = vec![0u32; plan.nodes.len()];
    for node in &plan.nodes {
        for c in &node.inputs {
            consumers[c.index()] += 1;
        }
    }
    let mut out = Vec::new();
    for node in &plan.nodes {
        if !matches!(node.kind, PhysKind::ShuffleWrite { .. }) {
            continue;
        }
        let mut chain: Vec<OpId> = Vec::new();
        let mut cur = node.inputs[0];
        let complete = loop {
            if consumers[cur.index()] != 1 || plan.root == cur {
                break false;
            }
            match &plan.node(cur).kind {
                PhysKind::Filter { .. } | PhysKind::Project { .. } => {
                    chain.push(cur);
                    cur = plan.node(cur).inputs[0];
                }
                PhysKind::Scan { .. } => {
                    chain.push(cur);
                    break true;
                }
                _ => break false,
            }
        };
        if complete {
            chain.reverse();
            out.push(Fragment {
                top: *chain.last().expect("non-empty fragment chain"),
                ops: chain,
            });
        }
    }
    out
}

/// Exactly-once commit state at one mesh seam, shared by every attempt
/// of the fragment. All seam sends happen under this lock.
struct SeamGate {
    /// Batch indices `0..committed` have crossed the seam.
    committed: u64,
    /// `Eof` has crossed the seam: the fragment is delivered.
    done: bool,
}

/// How one attempt of a fragment ended.
enum Outcome {
    /// This attempt claimed the seam's `Eof`: its view holds the
    /// fragment's definitive accounting.
    Won,
    /// A sibling won (or the run is tearing down); this attempt's state
    /// is quarantined and dropped.
    Lost,
    /// The attempt's chain died; the view's recorded error says how.
    Failed(SipError),
}

/// One in-flight attempt: its isolated view, the (original, replica)
/// filter pairs whose counters fold back on a win, and the drainer
/// thread computing the outcome.
struct Attempt {
    view: Arc<ExecContext>,
    filter_pairs: Vec<(Arc<InjectedFilter>, Arc<InjectedFilter>)>,
    join: JoinHandle<Outcome>,
}

/// Spawn the supervisor thread owning one fragment's seam sender. It
/// joins into the executor's handle list like any operator thread: by
/// the time the run returns, no attempt thread is left behind.
pub(crate) fn spawn_fragment_supervisor(
    ctx: Arc<ExecContext>,
    monitor: Arc<dyn ExecMonitor>,
    frag: Fragment,
    seam: Sender<Msg>,
) -> JoinHandle<()> {
    let name = format!("sip-recover-{}", frag.top);
    std::thread::Builder::new()
        .name(name)
        .spawn(move || supervise(ctx, monitor, frag, seam))
        .expect("spawn recovery supervisor")
}

fn supervise(
    ctx: Arc<ExecContext>,
    monitor: Arc<dyn ExecMonitor>,
    frag: Fragment,
    seam: Sender<Msg>,
) {
    let policy = ctx
        .options
        .retry
        .clone()
        .expect("fragment supervisor requires a retry policy")
        .reseeded(u64::from(frag.top.0));
    // Freeze the filter chains once: every attempt must see identical
    // filters, or a replay's batch sequence would diverge from the
    // batches already committed. Filters injected later prune less on
    // this fragment — safe, AIP filters are semantically transparent.
    let frozen: Vec<(usize, Vec<Arc<InjectedFilter>>)> = frag
        .ops
        .iter()
        .map(|op| (op.index(), ctx.taps[op.index()].snapshot().as_ref().clone()))
        .collect();
    let gate = Arc::new(Mutex::new(SeamGate {
        committed: 0,
        done: false,
    }));
    let progress = Arc::new(AtomicU64::new(0));
    let mut state = RetryState::new(policy.clone());
    // Total executions launched (first attempt + retries + speculative
    // duplicates) — speculation spends the same budget retries do, but
    // even a fail-fast policy with a quantum gets one duplicate.
    let mut launched = 1u32;
    let launch_cap = policy.max_attempts.max(2);

    loop {
        if ctx.cancel.is_cancelled() {
            return;
        }
        let mut runners = vec![launch_attempt(
            &ctx, &monitor, &frag, &frozen, &seam, &gate, &progress,
        )];
        let mut last_epoch = progress.load(Ordering::Relaxed);
        let mut last_change = Instant::now();
        let mut failure: Option<SipError> = None;
        let round_failure = loop {
            if let Some(i) = runners.iter().position(|r| r.join.is_finished()) {
                let Attempt {
                    view,
                    filter_pairs,
                    join,
                } = runners.swap_remove(i);
                match join.join() {
                    Ok(Outcome::Won) => {
                        for loser in &runners {
                            loser.view.cancel.cancel("fragment recovered elsewhere");
                        }
                        for loser in runners {
                            if loser.join.join().is_err() {
                                // The drainer itself panicked; its seam
                                // claims are sealed, but a panic in
                                // recovery code must not heal silently.
                                ctx.fail(SipError::Exec(
                                    "fragment drainer panicked during teardown".into(),
                                ));
                            }
                        }
                        commit_winner(&ctx, &frag, &view, &filter_pairs, launched > 1);
                        return;
                    }
                    Ok(Outcome::Lost) => {
                        if runners.is_empty() {
                            return; // winner already reaped or run tearing down
                        }
                    }
                    Ok(Outcome::Failed(e)) => {
                        failure.get_or_insert(e);
                        if runners.is_empty() {
                            break failure.take().expect("failure recorded");
                        }
                    }
                    Err(_) => {
                        failure.get_or_insert(SipError::Exec(
                            "recovery attempt thread panicked".into(),
                        ));
                        if runners.is_empty() {
                            break failure.take().expect("failure recorded");
                        }
                    }
                }
                continue;
            }
            if ctx.cancel.is_cancelled() {
                for r in &runners {
                    r.view.cancel.cancel("run cancelled");
                }
                for r in runners {
                    if r.join.join().is_err() {
                        ctx.fail(SipError::Exec(
                            "fragment drainer panicked during teardown".into(),
                        ));
                    }
                }
                return;
            }
            // Straggler detection: no batch committed for a full quantum
            // with a single live attempt ⇒ launch a speculative
            // duplicate. First finisher wins at the seam gate.
            let epoch = progress.load(Ordering::Relaxed);
            if epoch != last_epoch {
                last_epoch = epoch;
                last_change = Instant::now();
            } else if let Some(q) = policy.speculation_quantum {
                if runners.len() == 1
                    && launched < launch_cap
                    && last_change.elapsed() >= q
                    && !gate.lock().done
                {
                    launched += 1;
                    for op in &frag.ops {
                        ctx.hub.ops[op.index()]
                            .speculated
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    runners.push(launch_attempt(
                        &ctx, &monitor, &frag, &frozen, &seam, &gate, &progress,
                    ));
                    last_change = Instant::now();
                }
            }
            ctx.cancel.sleep_cancellable(Duration::from_millis(1));
        };
        // Every live attempt failed. Retry under the policy, or give up
        // and fail the run with the exhausted budget named.
        let class = round_failure.exec_class().unwrap_or(ExecFailure::Error);
        match state.again(class) {
            Some(delay) => {
                launched += 1;
                for op in &frag.ops {
                    ctx.hub.ops[op.index()]
                        .retries
                        .fetch_add(1, Ordering::Relaxed);
                }
                if !ctx.cancel.sleep_cancellable(delay) {
                    return;
                }
            }
            None => {
                if !ctx.cancel.is_cancelled() {
                    let e = if state.exhausted(class) {
                        state.give_up(round_failure)
                    } else {
                        round_failure
                    };
                    ctx.fail(e);
                }
                // Dropping the seam sender tears the writer down; its
                // disconnect is secondary to the error recorded above.
                return;
            }
        }
    }
}

/// Fold the winning attempt's accounting into the global run — per-op
/// counters into the global hub, replica filter counters into the live
/// injected filters — and flag the run as recovered when any repair
/// (retry or speculation) happened along the way.
fn commit_winner(
    ctx: &Arc<ExecContext>,
    frag: &Fragment,
    winner: &ExecContext,
    filter_pairs: &[(Arc<InjectedFilter>, Arc<InjectedFilter>)],
    healed: bool,
) {
    for op in &frag.ops {
        ctx.hub.ops[op.index()].absorb(&winner.hub.ops[op.index()]);
    }
    for (original, replica) in filter_pairs {
        original.absorb(replica);
    }
    if healed {
        ctx.hub.recovered.store(true, Ordering::Relaxed);
    }
}

/// Build one isolated attempt: replica filters, a fragment view, the
/// real operator threads wired in a private chain, and a drainer thread
/// claiming batches at the seam gate.
fn launch_attempt(
    ctx: &Arc<ExecContext>,
    monitor: &Arc<dyn ExecMonitor>,
    frag: &Fragment,
    frozen: &[(usize, Vec<Arc<InjectedFilter>>)],
    seam: &Sender<Msg>,
    gate: &Arc<Mutex<SeamGate>>,
    progress: &Arc<AtomicU64>,
) -> Attempt {
    let mut filter_pairs = Vec::new();
    let mut taps: Vec<FilterTap> = (0..ctx.plan.nodes.len())
        .map(|_| FilterTap::new())
        .collect();
    for (idx, originals) in frozen {
        let replicas: Vec<Arc<InjectedFilter>> =
            originals.iter().map(|f| Arc::new(f.replica())).collect();
        for (o, r) in originals.iter().zip(replicas.iter()) {
            filter_pairs.push((Arc::clone(o), Arc::clone(r)));
        }
        taps[*idx] = FilterTap::frozen(replicas);
    }
    let view = ctx.fragment_view(taps);
    let capacity = view.options.channel_capacity;
    let mut op_handles = Vec::with_capacity(frag.ops.len());
    let mut prev_rx: Option<Receiver<Msg>> = None;
    for op in &frag.ops {
        let (tx, rx) = bounded(capacity);
        let ins = prev_rx.take().map(|r| vec![r]).unwrap_or_default();
        op_handles.push(crate::exec::spawn_operator(&view, monitor, *op, ins, tx));
        prev_rx = Some(rx);
    }
    let top_rx = prev_rx.expect("fragment has at least one operator");
    let join = {
        let global = Arc::clone(ctx);
        let view = Arc::clone(&view);
        let seam = seam.clone();
        let gate = Arc::clone(gate);
        let progress = Arc::clone(progress);
        let name = format!("sip-attempt-{}", frag.top);
        std::thread::Builder::new()
            .name(name)
            .spawn(move || attempt_drain(global, view, op_handles, top_rx, seam, gate, progress))
            .expect("spawn recovery attempt drainer")
    };
    Attempt {
        view,
        filter_pairs,
        join,
    }
}

/// Drain one attempt's chain output, committing each batch index at the
/// seam gate exactly once across all attempts, then tear the view down
/// and report the outcome.
fn attempt_drain(
    global: Arc<ExecContext>,
    view: Arc<ExecContext>,
    ops: Vec<JoinHandle<()>>,
    rx: Receiver<Msg>,
    seam: Sender<Msg>,
    gate: Arc<Mutex<SeamGate>>,
    progress: Arc<AtomicU64>,
) -> Outcome {
    let mut index = 0u64;
    let mut failed = false;
    let outcome = loop {
        if global.cancel.is_cancelled() {
            break Outcome::Lost;
        }
        match rx.recv() {
            Ok(Msg::Eof) => {
                let mut g = gate.lock();
                if g.done {
                    break Outcome::Lost;
                }
                // Reaching Eof means this attempt visited every batch
                // index; each was committed here or by a sibling, and
                // all seam sends happen under this lock — so the full
                // sequence is sealed before Eof goes out.
                g.done = true;
                let delivered = seam.send(Msg::Eof).is_ok();
                drop(g);
                break if delivered {
                    Outcome::Won
                } else {
                    Outcome::Lost
                };
            }
            Ok(msg) => {
                let mut g = gate.lock();
                if g.done {
                    break Outcome::Lost;
                }
                if index == g.committed {
                    if seam.send(msg).is_err() {
                        // Writer gone: the run is failing elsewhere.
                        break Outcome::Lost;
                    }
                    g.committed += 1;
                    progress.fetch_add(1, Ordering::Relaxed);
                }
                drop(g);
                index += 1;
            }
            Err(_) => {
                failed = true;
                break Outcome::Lost; // placeholder; resolved after join
            }
        }
    };
    // Tear the view down (a loser's operators may still be running —
    // or hung on an injected stall) and reap every thread.
    if !matches!(outcome, Outcome::Won) {
        view.cancel.cancel("fragment attempt superseded or failed");
    }
    drop(rx);
    for h in ops {
        if h.join().is_err() {
            // catch_unwind contains operator panics, so this fires only
            // if the error-recording path itself panicked.
            view.fail(SipError::Exec(
                "operator thread panicked outside containment".into(),
            ));
            failed = true;
        }
    }
    if failed {
        let e = view.take_error().unwrap_or_else(|| {
            SipError::Exec("fragment chain died without a recorded error".into())
        });
        return Outcome::Failed(e);
    }
    outcome
}

/// Run-level retry: execute `run` under the options' [`sip_common::RetryPolicy`],
/// re-running the whole query (with [`ExecOptions::fresh_clone`]d
/// options) on retryable failures until it succeeds or the budget is
/// spent. This is the coarse recovery scope wrapped around
/// [`crate::execute_ctx`] by the serial and partition-parallel entry
/// points; fragment replay inside the run handles source-chain failures
/// at finer grain (and marks its errors exhausted, which this loop
/// honors by *not* re-spending its own budget on them).
///
/// Runs with external input feeds are executed exactly once: a consumed
/// feed channel cannot be replayed.
pub fn run_with_recovery(
    options: ExecOptions,
    mut run: impl FnMut(ExecOptions) -> Result<QueryOutput>,
) -> Result<QueryOutput> {
    let Some(policy) = options.retry.clone() else {
        return run(options);
    };
    if policy.max_attempts <= 1 || !options.external_inputs.lock().is_empty() {
        return run(options);
    }
    let mut state = RetryState::new(policy);
    let mut opts = options;
    loop {
        // Prepared before `run` consumes the options; shares the fault
        // ledger so bounded chaos faults stay exhausted across attempts.
        let next = opts.fresh_clone();
        match run(opts) {
            Ok(mut out) => {
                out.metrics.attempts = state.attempt();
                out.metrics.recovered |= state.attempt() > 1;
                return Ok(out);
            }
            Err(e) => {
                if retry::is_exhausted(&e) {
                    return Err(e); // an inner scope already spent a budget
                }
                let Some(class) = e.exec_class() else {
                    return Err(e);
                };
                match state.again(class) {
                    Some(delay) => {
                        CancelToken::new().sleep_cancellable(delay);
                        opts = next;
                    }
                    None => {
                        return Err(if state.exhausted(class) {
                            state.give_up(e)
                        } else {
                            e
                        })
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use sip_common::retry::RetryPolicy;
    use std::time::Duration;

    fn fake_output() -> QueryOutput {
        QueryOutput {
            rows: Vec::new(),
            metrics: ExecMetrics {
                wall_time: Duration::ZERO,
                peak_state_bytes: 0,
                final_state_bytes: 0,
                per_op: Vec::new(),
                rows_out: 0,
                aip_dropped_total: 0,
                filters_injected: 0,
                network_bytes: 0,
                attribution_underflow: 0,
                trace_level: sip_common::TraceLevel::Off,
                spans: Vec::new(),
                filter_events: Vec::new(),
                filter_stats: Vec::new(),
                cancelled: false,
                recovered: false,
                attempts: 1,
            },
        }
    }

    fn retryable_err() -> SipError {
        SipError::exec_at("boom", 1, "Scan", None, ExecFailure::Error)
    }

    #[test]
    fn run_level_retry_heals_transient_failures() {
        let opts = ExecOptions::default().with_retry(RetryPolicy {
            base_backoff: Duration::from_micros(50),
            ..RetryPolicy::with_attempts(3)
        });
        let mut calls = 0u32;
        let out = run_with_recovery(opts, |_| {
            calls += 1;
            if calls < 3 {
                Err(retryable_err())
            } else {
                Ok(fake_output())
            }
        })
        .unwrap();
        assert_eq!(calls, 3);
        assert_eq!(out.metrics.attempts, 3);
        assert!(out.metrics.recovered);
    }

    #[test]
    fn run_level_retry_exhausts_with_named_budget() {
        let opts = ExecOptions::default().with_retry(RetryPolicy {
            base_backoff: Duration::from_micros(50),
            ..RetryPolicy::with_attempts(2)
        });
        let mut calls = 0u32;
        let err = run_with_recovery(opts, |_| {
            calls += 1;
            Err(retryable_err())
        })
        .unwrap_err();
        assert_eq!(calls, 2);
        assert!(retry::is_exhausted(&err), "{err}");
        assert!(err.to_string().contains("RetryPolicy exhausted"), "{err}");
        assert_eq!(err.exec_class(), Some(ExecFailure::Error));
    }

    #[test]
    fn run_level_retry_respects_inner_exhaustion_and_classes() {
        // An error already marked exhausted by an inner (fragment) scope
        // must pass through without re-spending the run-level budget.
        let opts = ExecOptions::default().with_retry(RetryPolicy::with_attempts(5));
        let mut calls = 0u32;
        let inner = RetryState::new(RetryPolicy::with_attempts(2)).give_up(retryable_err());
        let err = run_with_recovery(opts, |_| {
            calls += 1;
            Err(inner.clone())
        })
        .unwrap_err();
        assert_eq!(calls, 1, "exhausted errors must not be retried again");
        assert!(retry::is_exhausted(&err));
        // Cancellation is never retried.
        let opts = ExecOptions::default().with_retry(RetryPolicy::with_attempts(5));
        let mut calls = 0u32;
        let err = run_with_recovery(opts, |_| {
            calls += 1;
            Err(SipError::exec_at(
                "deadline exceeded",
                0,
                "Scan",
                None,
                ExecFailure::Cancelled,
            ))
        })
        .unwrap_err();
        assert_eq!(calls, 1);
        assert!(!retry::is_exhausted(&err));
    }

    #[test]
    fn no_policy_means_single_shot() {
        let mut calls = 0u32;
        let err = run_with_recovery(ExecOptions::default(), |_| {
            calls += 1;
            Err(retryable_err())
        })
        .unwrap_err();
        assert_eq!(calls, 1);
        assert!(!retry::is_exhausted(&err));
    }
}
