//! Tap points: runtime-injectable semijoin filters on operator outputs.
//!
//! This is the engine mechanism behind §V-B: "we extended our join and
//! group-by implementations to support registration of new semijoin
//! operators 'on the fly'; these semijoins are called when a tuple is
//! received and before it is processed internally by the operator."
//!
//! Every operator owns one [`FilterTap`] applied to rows it is about to
//! emit. Controllers (feed-forward or cost-based) inject [`InjectedFilter`]s
//! at any point during execution; operators snapshot the filter list once
//! per batch, so injection is wait-free on the hot path.

use parking_lot::RwLock;
use sip_common::hash::partition_of;
use sip_common::{ColumnarBatch, DigestBuffer, DigestCache, OpId, Row, SelVec};
use sip_filter::{AipSet, SaltedKeys};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Restricts a filter built from *one partition's* state to the rows that
/// partition owns.
///
/// A per-partition AIP set summarizes only its own hash class of the
/// producing subexpression, so a row from another partition is outside the
/// set's domain — it must pass unprobed, never be dropped. With the scope
/// attached, a partition's filter can be injected plan-wide the moment that
/// partition's build side completes: early (small) partitions start pruning
/// sideways while slow (skewed) partitions are still building.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FilterScope {
    /// The producing partition.
    pub partition: u32,
    /// Total partitions in the producing plan.
    pub dop: u32,
}

impl FilterScope {
    /// Does the scoped filter apply to a row with this key digest?
    #[inline]
    pub fn applies(&self, digest: u64) -> bool {
        partition_of(digest, self.dop) == self.partition
    }
}

/// A semijoin filter probing specific output columns against an AIP set.
#[derive(Debug)]
pub struct InjectedFilter {
    /// Display label (e.g. `aip[ps2.ps_partkey] from op4`).
    pub label: String,
    /// Key column positions in the host operator's output layout.
    pub positions: Vec<usize>,
    /// The AIP set probed.
    pub set: Arc<AipSet>,
    /// Partition restriction for sets built from per-partition state;
    /// `None` = the set covers the whole subexpression.
    pub scope: Option<FilterScope>,
    /// Digests a skew-adaptive shuffle routed *outside* the partition-hash
    /// invariant on the producing stream (salted hot keys). A scoped
    /// filter must pass them unprobed: the producing partition's state
    /// does not cover a salted key even when the key hashes home to it —
    /// its rows were scattered or replicated across all partitions.
    /// Meaningless (and ignored) without a scope: unscoped sets cover the
    /// whole subexpression however rows were routed.
    pub salted: Option<Arc<SaltedKeys>>,
    /// Rows probed.
    pub probed: AtomicU64,
    /// Rows dropped.
    pub dropped: AtomicU64,
}

impl InjectedFilter {
    /// Create an unscoped (plan-wide) filter.
    pub fn new(label: impl Into<String>, positions: Vec<usize>, set: Arc<AipSet>) -> Self {
        Self::scoped(label, positions, set, None)
    }

    /// Create a filter, optionally restricted to one partition's rows.
    pub fn scoped(
        label: impl Into<String>,
        positions: Vec<usize>,
        set: Arc<AipSet>,
        scope: Option<FilterScope>,
    ) -> Self {
        Self::scoped_salted(label, positions, set, scope, None)
    }

    /// Create a partition-scoped filter over a stream whose salted digests
    /// must pass unprobed (see [`InjectedFilter::salted`]).
    pub fn scoped_salted(
        label: impl Into<String>,
        positions: Vec<usize>,
        set: Arc<AipSet>,
        scope: Option<FilterScope>,
        salted: Option<Arc<SaltedKeys>>,
    ) -> Self {
        InjectedFilter {
            label: label.into(),
            positions,
            set,
            scope,
            salted,
            probed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// A fresh copy of this filter's configuration with zeroed counters,
    /// sharing the working set (and scope exemptions) behind their Arcs.
    /// The recovery layer installs replicas in fragment-view taps so a
    /// failed attempt's partially-admitted probe/drop counts are
    /// quarantined with the attempt: only the winning attempt's replica
    /// counters fold back into this filter.
    pub fn replica(&self) -> InjectedFilter {
        InjectedFilter {
            label: self.label.clone(),
            positions: self.positions.clone(),
            set: Arc::clone(&self.set),
            scope: self.scope,
            salted: self.salted.clone(),
            probed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Fold a replica's counters back in (winning recovery attempt).
    pub fn absorb(&self, replica: &InjectedFilter) {
        self.probed
            .fetch_add(replica.probed.load(Ordering::Relaxed), Ordering::Relaxed);
        self.dropped
            .fetch_add(replica.dropped.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Is `digest` outside this filter's domain (foreign partition, or a
    /// salted key the producing partition's state does not cover)? Such
    /// rows pass unprobed and uncounted.
    #[inline]
    fn out_of_scope(&self, digest: u64) -> bool {
        match &self.scope {
            None => false,
            Some(scope) => {
                !scope.applies(digest) || self.salted.as_ref().is_some_and(|s| s.covers(digest))
            }
        }
    }

    /// Probe a row without touching the metric counters; `Some(ok)` when the
    /// filter applied, `None` when the row is outside this filter's
    /// partition scope (must pass, uncounted).
    #[inline]
    pub fn probe_quiet(&self, row: &Row) -> Option<bool> {
        let digest = row.key_hash(&self.positions);
        if self.out_of_scope(digest) {
            return None;
        }
        let key = row.key_values(&self.positions);
        Some(self.set.probe(digest, &key))
    }

    /// Batch kernel: narrow `sel` to the rows this filter admits.
    ///
    /// `digests[i]` must be row `i`'s digest over `self.positions` (one
    /// shared hash pass per batch per key-column set — see
    /// [`sip_common::DigestCache`]). Rows outside the filter's partition
    /// scope pass unprobed; probed rows are flagged in `probed_mask` so the
    /// caller can tally "rows touched by ≥1 filter" once per batch.
    /// Returns `(probed, dropped)` for this filter — the caller publishes
    /// them with one atomic add per batch.
    pub fn probe_batch(
        &self,
        rows: &[Row],
        digests: &[u64],
        sel: &mut SelVec,
        probed_mask: &mut [bool],
    ) -> (u64, u64) {
        let mut probed = 0u64;
        let mut dropped = 0u64;
        sel.retain(|i| {
            let i = i as usize;
            let digest = digests[i];
            if self.out_of_scope(digest) {
                return true; // foreign partition or salted key: pass unprobed
            }
            probed += 1;
            probed_mask[i] = true;
            let ok = self.set.probe_at(digest, rows[i].values(), &self.positions);
            if !ok {
                dropped += 1;
            }
            ok
        });
        self.probed.fetch_add(probed, Ordering::Relaxed);
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        (probed, dropped)
    }

    /// Columnar twin of [`InjectedFilter::probe_batch`]: identical scope,
    /// counter, and selection semantics, but exact-set probes compare
    /// against the column storage in place instead of a row's value slice.
    /// Digest parity between the row and columnar hash passes guarantees
    /// the two paths admit exactly the same rows.
    pub fn probe_batch_cols(
        &self,
        batch: &ColumnarBatch,
        digests: &[u64],
        sel: &mut SelVec,
        probed_mask: &mut [bool],
    ) -> (u64, u64) {
        let mut probed = 0u64;
        let mut dropped = 0u64;
        sel.retain(|i| {
            let i = i as usize;
            let digest = digests[i];
            if self.out_of_scope(digest) {
                return true; // foreign partition or salted key: pass unprobed
            }
            probed += 1;
            probed_mask[i] = true;
            let ok = self.set.probe_cols(digest, batch, i, &self.positions);
            if !ok {
                dropped += 1;
            }
            ok
        });
        self.probed.fetch_add(probed, Ordering::Relaxed);
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        (probed, dropped)
    }

    /// Probe a row; `true` = may pass, `false` = provably dead. Updates the
    /// per-filter counters one row at a time — batch paths should prefer
    /// [`InjectedFilter::probe_batch`], which shares one digest pass per
    /// batch and publishes counters once per batch.
    #[inline]
    pub fn admits(&self, row: &Row) -> bool {
        match self.probe_quiet(row) {
            None => true,
            Some(ok) => {
                self.probed.fetch_add(1, Ordering::Relaxed);
                if !ok {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                ok
            }
        }
    }
}

/// How to combine a new filter with an existing one over the same columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergePolicy {
    /// Keep both; rows must pass every filter.
    Stack,
    /// Bitwise-intersect with an existing same-geometry Bloom filter
    /// (§IV-B), falling back to stacking when geometries differ.
    Intersect,
    /// Replace any existing filter over the same columns (used when the new
    /// filter is strictly stronger).
    Replace,
}

/// The per-operator filter chain.
#[derive(Debug, Default)]
pub struct FilterTap {
    filters: RwLock<Arc<Vec<Arc<InjectedFilter>>>>,
}

impl FilterTap {
    /// Empty tap.
    pub fn new() -> Self {
        FilterTap::default()
    }

    /// A tap pre-loaded with a fixed chain. The recovery layer pins a
    /// fragment view's filters this way: every attempt of a fragment
    /// must see the *same* filter chain (frozen at supervisor start), or
    /// replayed batch sequences would diverge from the committed ones.
    pub fn frozen(chain: Vec<Arc<InjectedFilter>>) -> Self {
        FilterTap {
            filters: RwLock::new(Arc::new(chain)),
        }
    }

    /// Snapshot the current chain (cheap Arc clone; done once per batch).
    #[inline]
    pub fn snapshot(&self) -> Arc<Vec<Arc<InjectedFilter>>> {
        self.filters.read().clone()
    }

    /// Inject a filter under a merge policy. Returns the resulting chain
    /// length.
    pub fn inject(&self, filter: InjectedFilter, policy: MergePolicy) -> usize {
        let mut guard = self.filters.write();
        let mut chain: Vec<Arc<InjectedFilter>> = guard.as_ref().clone();
        match policy {
            MergePolicy::Stack => chain.push(Arc::new(filter)),
            MergePolicy::Replace => {
                chain.retain(|f| f.positions != filter.positions);
                chain.push(Arc::new(filter));
            }
            MergePolicy::Intersect => {
                let mut merged = false;
                for slot in chain.iter_mut() {
                    // Scopes (and salted exemptions) must match:
                    // intersecting sets from different partitions — or
                    // with different pass-unprobed domains — would
                    // conflate different key domains.
                    if slot.positions == filter.positions
                        && slot.scope == filter.scope
                        && slot.salted == filter.salted
                    {
                        if let (AipSet::Bloom(a), AipSet::Bloom(b)) =
                            (slot.set.as_ref(), filter.set.as_ref())
                        {
                            let mut combined = a.clone();
                            if combined.intersect(b).is_ok() {
                                *slot = Arc::new(InjectedFilter::scoped_salted(
                                    format!("{} ∩ {}", slot.label, filter.label),
                                    filter.positions.clone(),
                                    Arc::new(AipSet::Bloom(combined)),
                                    filter.scope,
                                    filter.salted.clone(),
                                ));
                                merged = true;
                                break;
                            }
                        }
                    }
                }
                if !merged {
                    chain.push(Arc::new(filter));
                }
            }
        }
        let len = chain.len();
        *guard = Arc::new(chain);
        len
    }

    /// Drop all filters (memory-pressure safety valve; AIP is a performance
    /// optimization, never required for correctness).
    pub fn clear(&self) {
        *self.filters.write() = Arc::new(Vec::new());
    }

    /// Number of active filters.
    pub fn len(&self) -> usize {
        self.filters.read().len()
    }

    /// True when no filters are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Identifies an injection site: the output of operator `op`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TapSite(pub OpId);

/// Per-operator batch-probe state: a selection vector, a probed-row mask,
/// and the shared digest cache. One instance lives on each operator thread
/// (inside its `Emitter`, or in the operator body when the tap is fused
/// with routing) and is reused across batches, so steady state allocates
/// nothing.
///
/// Usage per batch: [`TapKernel::begin`], optionally
/// [`TapKernel::retain_by_digest`] to narrow the selection first (e.g. an
/// `Exchange` keeping only its own partition's rows), then
/// [`TapKernel::probe_chain`] to run the filter stack. Because routing and
/// probing draw digests from the same [`DigestCache`], a filter over the
/// routing columns costs no second hash pass.
#[derive(Debug, Default)]
pub struct TapKernel {
    sel: SelVec,
    probed_mask: Vec<bool>,
    cache: DigestCache,
}

impl TapKernel {
    /// Fresh kernel state.
    pub fn new() -> Self {
        TapKernel::default()
    }

    /// Start a new batch of `n` rows: identity selection, cleared probe
    /// mask, invalidated digest buffers.
    pub fn begin(&mut self, n: usize) {
        self.sel.fill_identity(n);
        self.probed_mask.clear();
        self.probed_mask.resize(n, false);
        self.cache.begin_batch();
    }

    /// The digest buffer for `positions` over `rows`, computed at most once
    /// for the current batch.
    pub fn digests(&mut self, rows: &[Row], positions: &[usize]) -> &DigestBuffer {
        self.cache.get(rows, positions)
    }

    /// The digest buffer for `positions` over a columnar batch, computed at
    /// most once for the current batch (shares the cache with the row
    /// getter — the digests are identical).
    pub fn digests_cols(&mut self, batch: &ColumnarBatch, positions: &[usize]) -> &DigestBuffer {
        self.cache.get_cols(batch, positions)
    }

    /// Narrow the selection by a predicate over each row's `positions`
    /// digest (e.g. hash-partition ownership). Shares the digest cache with
    /// [`TapKernel::probe_chain`].
    pub fn retain_by_digest(
        &mut self,
        rows: &[Row],
        positions: &[usize],
        mut keep: impl FnMut(u64) -> bool,
    ) {
        let digests = self.cache.get(rows, positions);
        // Field-disjoint borrows: `digests` borrows the cache, `sel` is its
        // own field.
        let d = digests.digests();
        self.sel.retain(|i| keep(d[i as usize]));
    }

    /// Columnar twin of [`TapKernel::retain_by_digest`].
    pub fn retain_by_digest_cols(
        &mut self,
        batch: &ColumnarBatch,
        positions: &[usize],
        mut keep: impl FnMut(u64) -> bool,
    ) {
        let digests = self.cache.get_cols(batch, positions);
        let d = digests.digests();
        self.sel.retain(|i| keep(d[i as usize]));
    }

    /// Run the filter chain over the current selection: one digest pass per
    /// distinct probe-column set, per-filter counters published once per
    /// batch. Returns `(probed_rows, dropped_rows)` for the host operator's
    /// metrics — `probed_rows` counts rows at least one filter actually
    /// applied to (partition-scoped filters pass foreign rows untouched).
    pub fn probe_chain(&mut self, chain: &[Arc<InjectedFilter>], rows: &[Row]) -> (u64, u64) {
        let before = self.sel.len();
        for f in chain {
            if self.sel.is_empty() {
                break;
            }
            let digests = self.cache.get(rows, &f.positions);
            let d = digests.digests();
            f.probe_batch(rows, d, &mut self.sel, &mut self.probed_mask);
        }
        let probed_rows = self.probed_mask.iter().filter(|&&p| p).count() as u64;
        (probed_rows, (before - self.sel.len()) as u64)
    }

    /// Columnar twin of [`TapKernel::probe_chain`].
    pub fn probe_chain_cols(
        &mut self,
        chain: &[Arc<InjectedFilter>],
        batch: &ColumnarBatch,
    ) -> (u64, u64) {
        let before = self.sel.len();
        for f in chain {
            if self.sel.is_empty() {
                break;
            }
            let digests = self.cache.get_cols(batch, &f.positions);
            let d = digests.digests();
            f.probe_batch_cols(batch, d, &mut self.sel, &mut self.probed_mask);
        }
        let probed_rows = self.probed_mask.iter().filter(|&&p| p).count() as u64;
        (probed_rows, (before - self.sel.len()) as u64)
    }

    /// Snapshot `op`'s tap chain, probe it over the current selection, and
    /// publish the host operator's `aip_probed` / `aip_dropped` — the one
    /// batch-tap entry point shared by the `Emitter` and the operators
    /// that fuse the tap with routing (Exchange, ShuffleWrite), so the
    /// counter semantics cannot drift between them. Returns the number of
    /// rows dropped (callers compact only when it is non-zero).
    pub fn probe_op(&mut self, ctx: &crate::context::ExecContext, op: OpId, rows: &[Row]) -> u64 {
        let chain = ctx.taps[op.index()].snapshot();
        if chain.is_empty() {
            return 0;
        }
        let (probed, dropped) = self.probe_chain(&chain, rows);
        let m = ctx.hub.op(op);
        m.aip_probed.fetch_add(probed, Ordering::Relaxed);
        m.aip_dropped.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Columnar twin of [`TapKernel::probe_op`]: same snapshot, counter,
    /// and return semantics over a columnar batch.
    pub fn probe_op_cols(
        &mut self,
        ctx: &crate::context::ExecContext,
        op: OpId,
        batch: &ColumnarBatch,
    ) -> u64 {
        let chain = ctx.taps[op.index()].snapshot();
        if chain.is_empty() {
            return 0;
        }
        let (probed, dropped) = self.probe_chain_cols(&chain, batch);
        let m = ctx.hub.op(op);
        m.aip_probed.fetch_add(probed, Ordering::Relaxed);
        m.aip_dropped.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// The current selection (valid after [`TapKernel::begin`]).
    pub fn sel(&self) -> &SelVec {
        &self.sel
    }

    /// Compact `rows` to the current selection (order-preserving, no
    /// clones).
    pub fn compact(&self, rows: &mut Vec<Row>) {
        self.sel.compact(rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_common::Value;
    use sip_filter::AipSetBuilder;

    fn set_of(keys: &[i64]) -> Arc<AipSet> {
        let mut b = AipSetBuilder::new(sip_filter::AipSetKind::Hash, keys.len(), 0.05, 1);
        for &k in keys {
            let key = vec![Value::Int(k)];
            b.insert(sip_common::hash_key(&key), &key);
        }
        Arc::new(b.finish())
    }

    fn row(k: i64) -> Row {
        Row::new(vec![Value::Int(k), Value::str("payload")])
    }

    #[test]
    fn filter_admits_members_only() {
        let f = InjectedFilter::new("t", vec![0], set_of(&[1, 2, 3]));
        assert!(f.admits(&row(2)));
        assert!(!f.admits(&row(9)));
        assert_eq!(f.probed.load(Ordering::Relaxed), 2);
        assert_eq!(f.dropped.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stack_requires_all_filters() {
        let tap = FilterTap::new();
        tap.inject(
            InjectedFilter::new("a", vec![0], set_of(&[1, 2])),
            MergePolicy::Stack,
        );
        tap.inject(
            InjectedFilter::new("b", vec![0], set_of(&[2, 3])),
            MergePolicy::Stack,
        );
        let chain = tap.snapshot();
        assert_eq!(chain.len(), 2);
        let pass = |r: &Row| chain.iter().all(|f| f.admits(r));
        assert!(pass(&row(2)));
        assert!(!pass(&row(1)));
        assert!(!pass(&row(3)));
    }

    #[test]
    fn replace_removes_same_columns() {
        let tap = FilterTap::new();
        tap.inject(
            InjectedFilter::new("a", vec![0], set_of(&[1])),
            MergePolicy::Stack,
        );
        tap.inject(
            InjectedFilter::new("b", vec![0], set_of(&[2])),
            MergePolicy::Replace,
        );
        let chain = tap.snapshot();
        assert_eq!(chain.len(), 1);
        assert!(chain[0].admits(&row(2)));
        // Filters over different columns survive a replace.
        tap.inject(
            InjectedFilter::new("c", vec![1], set_of(&[5])),
            MergePolicy::Stack,
        );
        tap.inject(
            InjectedFilter::new("d", vec![0], set_of(&[7])),
            MergePolicy::Replace,
        );
        assert_eq!(tap.len(), 2);
    }

    #[test]
    fn intersect_merges_blooms() {
        let bloom_of = |keys: &[i64]| {
            let mut b = AipSetBuilder::new(sip_filter::AipSetKind::Bloom, 64, 0.01, 1);
            for &k in keys {
                let key = vec![Value::Int(k)];
                b.insert(sip_common::hash_key(&key), &key);
            }
            Arc::new(b.finish())
        };
        let tap = FilterTap::new();
        tap.inject(
            InjectedFilter::new("a", vec![0], bloom_of(&[1, 2, 3])),
            MergePolicy::Intersect,
        );
        tap.inject(
            InjectedFilter::new("b", vec![0], bloom_of(&[2, 3, 4])),
            MergePolicy::Intersect,
        );
        // Merged into one filter that admits the intersection.
        assert_eq!(tap.len(), 1);
        let chain = tap.snapshot();
        assert!(chain[0].admits(&row(2)));
        assert!(chain[0].admits(&row(3)));
    }

    #[test]
    fn intersect_falls_back_to_stack_for_hash_sets() {
        let tap = FilterTap::new();
        tap.inject(
            InjectedFilter::new("a", vec![0], set_of(&[1, 2])),
            MergePolicy::Intersect,
        );
        tap.inject(
            InjectedFilter::new("b", vec![0], set_of(&[2, 3])),
            MergePolicy::Intersect,
        );
        assert_eq!(tap.len(), 2);
    }

    #[test]
    fn clear_empties_chain() {
        let tap = FilterTap::new();
        tap.inject(
            InjectedFilter::new("a", vec![0], set_of(&[1])),
            MergePolicy::Stack,
        );
        assert!(!tap.is_empty());
        tap.clear();
        assert!(tap.is_empty());
    }

    #[test]
    fn scoped_filter_passes_foreign_partitions_unprobed() {
        let dop = 2u32;
        // Find keys owned by partition 0 and partition 1.
        let owned_by = |p: u32| {
            (0i64..)
                .find(|&k| {
                    sip_common::hash::partition_of(sip_common::hash_key(&[Value::Int(k)]), dop) == p
                })
                .unwrap()
        };
        let mine = owned_by(0);
        let foreign = owned_by(1);
        // Partition 0's set contains nothing → drops every partition-0 key.
        let f = InjectedFilter::scoped(
            "p0",
            vec![0],
            set_of(&[]),
            Some(FilterScope { partition: 0, dop }),
        );
        // Foreign rows pass without being probed or dropped.
        assert!(f.admits(&row(foreign)));
        assert_eq!(f.probed.load(Ordering::Relaxed), 0);
        // Owned rows are probed (and dropped: the set is empty).
        assert!(!f.admits(&row(mine)));
        assert_eq!(f.probed.load(Ordering::Relaxed), 1);
        assert_eq!(f.dropped.load(Ordering::Relaxed), 1);
        assert_eq!(f.probe_quiet(&row(foreign)), None);
        assert_eq!(f.probe_quiet(&row(mine)), Some(false));
    }

    #[test]
    fn scoped_filter_passes_salted_keys_unprobed() {
        let dop = 2u32;
        let owned_by = |p: u32| {
            (0i64..)
                .find(|&k| {
                    sip_common::hash::partition_of(sip_common::hash_key(&[Value::Int(k)]), dop) == p
                })
                .unwrap()
        };
        let mine = owned_by(0);
        // An empty set scoped to partition 0 drops every partition-0 key —
        // unless the key is salted, in which case its rows may live in any
        // partition and the filter must pass it unprobed.
        let salted: sip_common::FxHashSet<u64> =
            std::iter::once(sip_common::hash_key(&[Value::Int(mine)])).collect();
        let f = InjectedFilter::scoped_salted(
            "p0",
            vec![0],
            set_of(&[]),
            Some(FilterScope { partition: 0, dop }),
            Some(sip_filter::SaltedKeys::from_digests(salted)),
        );
        assert_eq!(f.probe_quiet(&row(mine)), None, "salted key was probed");
        assert!(f.admits(&row(mine)));
        assert_eq!(f.probed.load(Ordering::Relaxed), 0);
        // The batch kernel agrees with the row path.
        let rows = vec![row(mine)];
        let digests = vec![rows[0].key_hash(&[0])];
        let mut sel = SelVec::default();
        sel.fill_identity(1);
        let mut mask = vec![false];
        let (probed, dropped) = f.probe_batch(&rows, &digests, &mut sel, &mut mask);
        assert_eq!((probed, dropped), (0, 0));
        assert_eq!(sel.len(), 1, "salted row must survive");
        // The same key without the exemption is probed and dropped.
        let g = InjectedFilter::scoped(
            "p0-strict",
            vec![0],
            set_of(&[]),
            Some(FilterScope { partition: 0, dop }),
        );
        assert!(!g.admits(&row(mine)));
        // An all-salted exemption passes everything.
        let all = InjectedFilter::scoped_salted(
            "p0-all",
            vec![0],
            set_of(&[]),
            Some(FilterScope { partition: 0, dop }),
            Some(Arc::new(sip_filter::SaltedKeys::All)),
        );
        assert!(all.admits(&row(mine)));
        assert_eq!(all.probed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn columnar_probe_batch_matches_row_probe_batch() {
        let rows: Vec<Row> = (0..64).map(row).collect();
        let batch = ColumnarBatch::from_rows(&rows);
        let mut digests = DigestBuffer::default();
        digests.compute(&rows, &[0]);
        // Unscoped, scoped (dop 2, partition 0), and scoped+salted filters
        // must keep identical selections and counters on both layouts.
        let salted: sip_common::FxHashSet<u64> = digests.digests()[..8].iter().copied().collect();
        let filters = [
            InjectedFilter::new("plain", vec![0], set_of(&[2, 5, 9, 33])),
            InjectedFilter::scoped(
                "scoped",
                vec![0],
                set_of(&[2, 5, 9, 33]),
                Some(FilterScope {
                    partition: 0,
                    dop: 2,
                }),
            ),
            InjectedFilter::scoped_salted(
                "salted",
                vec![0],
                set_of(&[]),
                Some(FilterScope {
                    partition: 0,
                    dop: 2,
                }),
                Some(sip_filter::SaltedKeys::from_digests(salted)),
            ),
        ];
        for f in &filters {
            let mut sel_r = SelVec::default();
            sel_r.fill_identity(rows.len());
            let mut mask_r = vec![false; rows.len()];
            let (pr, dr) = f.probe_batch(&rows, digests.digests(), &mut sel_r, &mut mask_r);
            let mut sel_c = SelVec::default();
            sel_c.fill_identity(rows.len());
            let mut mask_c = vec![false; rows.len()];
            let (pc, dc) = f.probe_batch_cols(&batch, digests.digests(), &mut sel_c, &mut mask_c);
            assert_eq!((pr, dr), (pc, dc), "{} counters", f.label);
            assert_eq!(sel_r, sel_c, "{} selection", f.label);
            assert_eq!(mask_r, mask_c, "{} probed mask", f.label);
        }
    }

    #[test]
    fn intersect_keeps_different_scopes_apart() {
        let bloom_of = |keys: &[i64]| {
            let mut b = AipSetBuilder::new(sip_filter::AipSetKind::Bloom, 64, 0.01, 1);
            for &k in keys {
                let key = vec![Value::Int(k)];
                b.insert(sip_common::hash_key(&key), &key);
            }
            Arc::new(b.finish())
        };
        let tap = FilterTap::new();
        let scope = |p| {
            Some(FilterScope {
                partition: p,
                dop: 2,
            })
        };
        tap.inject(
            InjectedFilter::scoped("a", vec![0], bloom_of(&[1]), scope(0)),
            MergePolicy::Intersect,
        );
        tap.inject(
            InjectedFilter::scoped("b", vec![0], bloom_of(&[2]), scope(1)),
            MergePolicy::Intersect,
        );
        // Different partitions: stacked, not merged.
        assert_eq!(tap.len(), 2);
        tap.inject(
            InjectedFilter::scoped("c", vec![0], bloom_of(&[3]), scope(1)),
            MergePolicy::Intersect,
        );
        // Same partition: merged.
        assert_eq!(tap.len(), 2);
    }

    #[test]
    fn snapshot_isolated_from_later_injection() {
        let tap = FilterTap::new();
        let snap = tap.snapshot();
        tap.inject(
            InjectedFilter::new("a", vec![0], set_of(&[1])),
            MergePolicy::Stack,
        );
        assert_eq!(snap.len(), 0);
        assert_eq!(tap.snapshot().len(), 1);
    }
}
