//! Tap points: runtime-injectable semijoin filters on operator outputs.
//!
//! This is the engine mechanism behind §V-B: "we extended our join and
//! group-by implementations to support registration of new semijoin
//! operators 'on the fly'; these semijoins are called when a tuple is
//! received and before it is processed internally by the operator."
//!
//! Every operator owns one [`FilterTap`] applied to rows it is about to
//! emit. Controllers (feed-forward or cost-based) inject [`InjectedFilter`]s
//! at any point during execution; operators snapshot the filter list once
//! per batch, so injection is wait-free on the hot path.

use parking_lot::RwLock;
use sip_common::{OpId, Row};
use sip_filter::AipSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A semijoin filter probing specific output columns against an AIP set.
#[derive(Debug)]
pub struct InjectedFilter {
    /// Display label (e.g. `aip[ps2.ps_partkey] from op4`).
    pub label: String,
    /// Key column positions in the host operator's output layout.
    pub positions: Vec<usize>,
    /// The AIP set probed.
    pub set: Arc<AipSet>,
    /// Rows probed.
    pub probed: AtomicU64,
    /// Rows dropped.
    pub dropped: AtomicU64,
}

impl InjectedFilter {
    /// Create a filter.
    pub fn new(label: impl Into<String>, positions: Vec<usize>, set: Arc<AipSet>) -> Self {
        InjectedFilter {
            label: label.into(),
            positions,
            set,
            probed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Probe a row; `true` = may pass, `false` = provably dead.
    #[inline]
    pub fn admits(&self, row: &Row) -> bool {
        self.probed.fetch_add(1, Ordering::Relaxed);
        let digest = row.key_hash(&self.positions);
        let key = row.key_values(&self.positions);
        let ok = self.set.probe(digest, &key);
        if !ok {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }
}

/// How to combine a new filter with an existing one over the same columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergePolicy {
    /// Keep both; rows must pass every filter.
    Stack,
    /// Bitwise-intersect with an existing same-geometry Bloom filter
    /// (§IV-B), falling back to stacking when geometries differ.
    Intersect,
    /// Replace any existing filter over the same columns (used when the new
    /// filter is strictly stronger).
    Replace,
}

/// The per-operator filter chain.
#[derive(Debug, Default)]
pub struct FilterTap {
    filters: RwLock<Arc<Vec<Arc<InjectedFilter>>>>,
}

impl FilterTap {
    /// Empty tap.
    pub fn new() -> Self {
        FilterTap::default()
    }

    /// Snapshot the current chain (cheap Arc clone; done once per batch).
    #[inline]
    pub fn snapshot(&self) -> Arc<Vec<Arc<InjectedFilter>>> {
        self.filters.read().clone()
    }

    /// Inject a filter under a merge policy. Returns the resulting chain
    /// length.
    pub fn inject(&self, filter: InjectedFilter, policy: MergePolicy) -> usize {
        let mut guard = self.filters.write();
        let mut chain: Vec<Arc<InjectedFilter>> = guard.as_ref().clone();
        match policy {
            MergePolicy::Stack => chain.push(Arc::new(filter)),
            MergePolicy::Replace => {
                chain.retain(|f| f.positions != filter.positions);
                chain.push(Arc::new(filter));
            }
            MergePolicy::Intersect => {
                let mut merged = false;
                for slot in chain.iter_mut() {
                    if slot.positions == filter.positions {
                        if let (AipSet::Bloom(a), AipSet::Bloom(b)) =
                            (slot.set.as_ref(), filter.set.as_ref())
                        {
                            let mut combined = a.clone();
                            if combined.intersect(b).is_ok() {
                                *slot = Arc::new(InjectedFilter::new(
                                    format!("{} ∩ {}", slot.label, filter.label),
                                    filter.positions.clone(),
                                    Arc::new(AipSet::Bloom(combined)),
                                ));
                                merged = true;
                                break;
                            }
                        }
                    }
                }
                if !merged {
                    chain.push(Arc::new(filter));
                }
            }
        }
        let len = chain.len();
        *guard = Arc::new(chain);
        len
    }

    /// Drop all filters (memory-pressure safety valve; AIP is a performance
    /// optimization, never required for correctness).
    pub fn clear(&self) {
        *self.filters.write() = Arc::new(Vec::new());
    }

    /// Number of active filters.
    pub fn len(&self) -> usize {
        self.filters.read().len()
    }

    /// True when no filters are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Identifies an injection site: the output of operator `op`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TapSite(pub OpId);

#[cfg(test)]
mod tests {
    use super::*;
    use sip_common::Value;
    use sip_filter::AipSetBuilder;

    fn set_of(keys: &[i64]) -> Arc<AipSet> {
        let mut b = AipSetBuilder::new(sip_filter::AipSetKind::Hash, keys.len(), 0.05, 1);
        for &k in keys {
            let key = vec![Value::Int(k)];
            b.insert(sip_common::hash_key(&key), &key);
        }
        Arc::new(b.finish())
    }

    fn row(k: i64) -> Row {
        Row::new(vec![Value::Int(k), Value::str("payload")])
    }

    #[test]
    fn filter_admits_members_only() {
        let f = InjectedFilter::new("t", vec![0], set_of(&[1, 2, 3]));
        assert!(f.admits(&row(2)));
        assert!(!f.admits(&row(9)));
        assert_eq!(f.probed.load(Ordering::Relaxed), 2);
        assert_eq!(f.dropped.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stack_requires_all_filters() {
        let tap = FilterTap::new();
        tap.inject(
            InjectedFilter::new("a", vec![0], set_of(&[1, 2])),
            MergePolicy::Stack,
        );
        tap.inject(
            InjectedFilter::new("b", vec![0], set_of(&[2, 3])),
            MergePolicy::Stack,
        );
        let chain = tap.snapshot();
        assert_eq!(chain.len(), 2);
        let pass = |r: &Row| chain.iter().all(|f| f.admits(r));
        assert!(pass(&row(2)));
        assert!(!pass(&row(1)));
        assert!(!pass(&row(3)));
    }

    #[test]
    fn replace_removes_same_columns() {
        let tap = FilterTap::new();
        tap.inject(
            InjectedFilter::new("a", vec![0], set_of(&[1])),
            MergePolicy::Stack,
        );
        tap.inject(
            InjectedFilter::new("b", vec![0], set_of(&[2])),
            MergePolicy::Replace,
        );
        let chain = tap.snapshot();
        assert_eq!(chain.len(), 1);
        assert!(chain[0].admits(&row(2)));
        // Filters over different columns survive a replace.
        tap.inject(
            InjectedFilter::new("c", vec![1], set_of(&[5])),
            MergePolicy::Stack,
        );
        tap.inject(
            InjectedFilter::new("d", vec![0], set_of(&[7])),
            MergePolicy::Replace,
        );
        assert_eq!(tap.len(), 2);
    }

    #[test]
    fn intersect_merges_blooms() {
        let bloom_of = |keys: &[i64]| {
            let mut b = AipSetBuilder::new(sip_filter::AipSetKind::Bloom, 64, 0.01, 1);
            for &k in keys {
                let key = vec![Value::Int(k)];
                b.insert(sip_common::hash_key(&key), &key);
            }
            Arc::new(b.finish())
        };
        let tap = FilterTap::new();
        tap.inject(
            InjectedFilter::new("a", vec![0], bloom_of(&[1, 2, 3])),
            MergePolicy::Intersect,
        );
        tap.inject(
            InjectedFilter::new("b", vec![0], bloom_of(&[2, 3, 4])),
            MergePolicy::Intersect,
        );
        // Merged into one filter that admits the intersection.
        assert_eq!(tap.len(), 1);
        let chain = tap.snapshot();
        assert!(chain[0].admits(&row(2)));
        assert!(chain[0].admits(&row(3)));
    }

    #[test]
    fn intersect_falls_back_to_stack_for_hash_sets() {
        let tap = FilterTap::new();
        tap.inject(
            InjectedFilter::new("a", vec![0], set_of(&[1, 2])),
            MergePolicy::Intersect,
        );
        tap.inject(
            InjectedFilter::new("b", vec![0], set_of(&[2, 3])),
            MergePolicy::Intersect,
        );
        assert_eq!(tap.len(), 2);
    }

    #[test]
    fn clear_empties_chain() {
        let tap = FilterTap::new();
        tap.inject(
            InjectedFilter::new("a", vec![0], set_of(&[1])),
            MergePolicy::Stack,
        );
        assert!(!tap.is_empty());
        tap.clear();
        assert!(tap.is_empty());
    }

    #[test]
    fn snapshot_isolated_from_later_injection() {
        let tap = FilterTap::new();
        let snap = tap.snapshot();
        tap.inject(
            InjectedFilter::new("a", vec![0], set_of(&[1])),
            MergePolicy::Stack,
        );
        assert_eq!(snap.len(), 0);
        assert_eq!(tap.snapshot().len(), 1);
    }
}
