//! Physical plans: flat operator arenas ready for threaded execution.
//!
//! A [`PhysPlan`] is a tree of operators stored in post-order (children
//! before parents) so the AIP manager can walk ancestors, depths, and
//! attribute locations in O(1)-ish time — the traversals `AIPCANDIDATES`
//! and `ESTIMATEBENEFIT` (Figs. 3-4) perform at runtime.

use sip_common::{plan_err, AttrId, OpId, Result};
use sip_data::{Catalog, Table};
use sip_expr::{AggFunc, Expr};
use sip_filter::SaltedKeys;
use sip_plan::{AttrCatalog, LogicalPlan};
use std::fmt::Write as _;
use std::sync::Arc;

/// One bound aggregate: function + bound input expression.
#[derive(Clone, Debug)]
pub struct BoundAgg {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input expression bound to the aggregate input's layout.
    pub input: Expr,
}

/// Hash-partition pushdown on a scan: emit only the rows owned by one
/// partition of a `dop`-way hash partitioning (see `sip-parallel`).
///
/// Semantically this is an [`PhysKind::Exchange`] fused into the scan. The
/// fusion matters for delayed sources: the delay model charges transmission
/// time per *shipped* row, so a partitioned scan of a slow source pays only
/// its own partition's share — the distributed-pushdown effect that lets
/// `dop` partitions overlap source latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanPartition {
    /// Position in the scan's *output* layout whose value is hashed
    /// (ignored when `rowid` is set).
    pub col: usize,
    /// This scan's partition index (`< dop`).
    pub partition: u32,
    /// Total number of partitions.
    pub dop: u32,
    /// Split by row index modulo `dop` instead of by key hash. A rowid
    /// split is perfectly balanced regardless of the data distribution but
    /// upholds no partition-hash invariant, so the expander only uses it
    /// for streams that are re-dealt by a shuffle mesh above anyway — the
    /// scatter side of a salted join, whose hot key would otherwise
    /// concentrate the (possibly delay-modeled) source on one scan.
    pub rowid: bool,
}

impl ScanPartition {
    /// Does this partition own `digest`? (Hash mode only; rowid splits
    /// decide by row index via [`ScanPartition::owns_row`].)
    #[inline]
    pub fn owns(&self, digest: u64) -> bool {
        sip_common::hash::partition_of(digest, self.dop) == self.partition
    }

    /// Does this partition own the row with table index `row_index` and
    /// key digest `digest`?
    #[inline]
    pub fn owns_row(&self, digest: u64, row_index: u64) -> bool {
        if self.rowid {
            (row_index % self.dop as u64) as u32 == self.partition
        } else {
            self.owns(digest)
        }
    }
}

/// How a salted [`PhysKind::ShuffleWrite`] routes the rows of its hot
/// (salted) keys. Cold keys always route by hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SaltRole {
    /// Deal salted rows round-robin across all readers — the probe side of
    /// a skew-adaptive join. Each row still reaches exactly one partition,
    /// so output multisets are preserved; placement is arbitrary, which is
    /// sound because the matching build rows are replicated everywhere.
    Scatter,
    /// Send each salted row to *every* reader — the build side. Set/join
    /// semantics tolerate the replication: each scattered probe row meets
    /// each matching build row exactly once, in its own partition.
    Broadcast,
}

/// Salting instructions for one shuffle mesh, fixed at plan time (a fully
/// pipelined symmetric join cannot retroactively replicate build rows of a
/// key that turns hot mid-stream, so the hot set must be known before rows
/// flow; `sip-parallel` derives it from exact base-table frequencies).
/// The probe mesh and the build mesh of one salted join share the same
/// [`SaltedKeys`] so both sides agree on which keys live everywhere.
#[derive(Clone, Debug, PartialEq)]
pub struct SaltSpec {
    /// The salted key digests (`SaltedKeys::All` = replicated-build
    /// fallback: every build row broadcast, every probe row dealt
    /// round-robin).
    pub keys: Arc<SaltedKeys>,
    /// This writer's routing role for salted rows.
    pub role: SaltRole,
    /// Estimated fraction of the stream's rows the salted keys cover
    /// (1.0 for `SaltedKeys::All`). A broadcast writer replicates this
    /// share to every reader — the estimator uses it to price reader
    /// cardinality instead of assuming a clean `1/dop` split.
    pub hot_coverage: f64,
}

/// The operator algebra the engine executes.
#[derive(Clone, Debug)]
pub enum PhysKind {
    /// Scan an in-memory table, emitting selected columns.
    Scan {
        /// The table.
        table: Arc<Table>,
        /// Base-table column positions to emit, in output order.
        cols: Vec<usize>,
        /// The scan binding (used to look up delay models).
        binding: String,
        /// Hash-partition pushdown, if this scan belongs to one partition
        /// of a parallel plan.
        part: Option<ScanPartition>,
    },
    /// Row filter; predicate bound to the input layout.
    Filter {
        /// Bound predicate.
        predicate: Expr,
    },
    /// Projection; expressions bound to the input layout.
    Project {
        /// Bound expressions, in output order.
        exprs: Vec<Expr>,
    },
    /// Symmetric (doubly-pipelined) hash join.
    HashJoin {
        /// Key positions in the left input's layout.
        left_keys: Vec<usize>,
        /// Key positions in the right input's layout.
        right_keys: Vec<usize>,
        /// Residual predicate bound to the concatenated layout.
        residual: Option<Expr>,
    },
    /// Hash aggregation (blocking).
    Aggregate {
        /// Group-key positions in the input layout.
        group_cols: Vec<usize>,
        /// Aggregates.
        aggs: Vec<BoundAgg>,
    },
    /// Pipelined duplicate elimination over the whole row.
    Distinct,
    /// Pipelined semijoin: emit input-0 rows that match input-1 (the build
    /// side — e.g. a magic set). Unmatched probe rows are buffered until the
    /// build completes, then discarded.
    SemiJoin {
        /// Key positions in the probe (input 0) layout.
        probe_keys: Vec<usize>,
        /// Key positions in the build (input 1) layout.
        build_keys: Vec<usize>,
    },
    /// Rows arrive from outside this executor (a remote site fragment).
    /// The executor looks up the feeding channel in `ExecOptions`.
    ExternalSource {
        /// Display label (e.g. `remote:partsupp@site1`).
        label: String,
    },
    /// Hash-repartition boundary: forward only the input rows owned by one
    /// partition of a `dop`-way hash partitioning. Inserted by
    /// `sip-parallel` above replicated subtrees feeding co-partitioned
    /// joins; the scan-level fusion is [`ScanPartition`].
    Exchange {
        /// Position in the input layout whose value is hashed.
        col: usize,
        /// The partition this operator keeps (`< dop`).
        partition: u32,
        /// Total number of partitions.
        dop: u32,
    },
    /// Union of N same-layout input streams: forwards every input batch,
    /// finishing when all inputs reach EOF. The join point where partition
    /// clones rejoin the serial tail of a parallel plan.
    Merge,
    /// Producer half of an all-to-all hash repartition (shuffle): routes
    /// every input row to the [`PhysKind::ShuffleRead`] of mesh `mesh`
    /// owning `hash(col) % dop`, over a `writers × dop` grid of bounded
    /// channels held by the [`crate::ExecContext`]. Its tree output carries
    /// no rows — only EOF, consumed by the paired reader — so the plan
    /// stays a valid tree while data crosses partition boundaries sideways.
    ShuffleWrite {
        /// Mesh this writer feeds (shared by its readers).
        mesh: u32,
        /// Position in the input layout whose value is hashed for routing.
        col: usize,
        /// This writer's index in the mesh (`< writers` of the readers).
        writer: u32,
        /// Number of consumer partitions (the hash modulus).
        dop: u32,
        /// Skew-adaptive routing for hot keys (`None` = pure hash routing).
        salt: Option<SaltSpec>,
    },
    /// Consumer half of a shuffle: drains the `writers` mesh channels
    /// addressed to `partition`, emitting their union downstream. Finishes
    /// when every writer has sent EOF. Takes the paired writer (same index)
    /// as an optional tree input purely for plan structure; a distribute
    /// mesh (`writers == 1`) pairs only partition 0.
    ShuffleRead {
        /// Mesh this reader drains.
        mesh: u32,
        /// The partition of the hash space this reader owns (`< dop`).
        partition: u32,
        /// Number of writers feeding the mesh.
        writers: u32,
        /// Total consumer partitions.
        dop: u32,
    },
}

impl PhysKind {
    /// Does this operator buffer state that AIP can summarize?
    pub fn is_stateful(&self) -> bool {
        matches!(
            self,
            PhysKind::HashJoin { .. }
                | PhysKind::Aggregate { .. }
                | PhysKind::Distinct
                | PhysKind::SemiJoin { .. }
        )
    }

    /// Short operator name.
    pub fn name(&self) -> &'static str {
        match self {
            PhysKind::Scan { .. } => "Scan",
            PhysKind::Filter { .. } => "Filter",
            PhysKind::Project { .. } => "Project",
            PhysKind::HashJoin { .. } => "HashJoin",
            PhysKind::Aggregate { .. } => "Aggregate",
            PhysKind::Distinct => "Distinct",
            PhysKind::SemiJoin { .. } => "SemiJoin",
            PhysKind::ExternalSource { .. } => "ExternalSource",
            PhysKind::Exchange { .. } => "Exchange",
            PhysKind::Merge => "Merge",
            PhysKind::ShuffleWrite { .. } => "ShuffleWrite",
            PhysKind::ShuffleRead { .. } => "ShuffleRead",
        }
    }
}

/// One node of a physical plan.
#[derive(Clone, Debug)]
pub struct PhysNode {
    /// This node's id (its index in the arena).
    pub id: OpId,
    /// The operator.
    pub kind: PhysKind,
    /// Children, in input order.
    pub inputs: Vec<OpId>,
    /// Output layout: the attribute at each output position.
    pub layout: Vec<AttrId>,
}

/// A complete physical plan.
#[derive(Clone, Debug)]
pub struct PhysPlan {
    /// Operator arena in post-order; the root is the last node.
    pub nodes: Vec<PhysNode>,
    /// Root operator.
    pub root: OpId,
    /// The query's attribute catalog (names/types for display & AIP).
    pub attrs: AttrCatalog,
}

impl PhysPlan {
    /// Build from parts, validating tree structure.
    pub fn from_nodes(nodes: Vec<PhysNode>, root: OpId, attrs: AttrCatalog) -> Result<PhysPlan> {
        let plan = PhysPlan { nodes, root, attrs };
        plan.validate()?;
        Ok(plan)
    }

    /// Check indices, arities, and post-ordering.
    pub fn validate(&self) -> Result<()> {
        if self.root.index() >= self.nodes.len() {
            return Err(plan_err!("root {:?} out of range", self.root));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id.index() != i {
                return Err(plan_err!("node at {i} has id {}", n.id));
            }
            match &n.kind {
                // Merge is the one variadic operator: any positive arity.
                PhysKind::Merge => {
                    if n.inputs.is_empty() {
                        return Err(plan_err!("node {} (Merge) needs at least one input", n.id));
                    }
                    for &c in &n.inputs {
                        if c.index() < i && self.nodes[c.index()].layout != n.layout {
                            return Err(plan_err!(
                                "node {} (Merge) input {c} layout differs from merge layout",
                                n.id
                            ));
                        }
                    }
                }
                // A shuffle reader's real inputs arrive over the mesh; its
                // single optional tree input is the paired writer (EOF
                // only). Distribute meshes (one writer, dop readers) leave
                // the unpaired readers with no tree input at all.
                PhysKind::ShuffleRead { .. } => {
                    if n.inputs.len() > 1 {
                        return Err(plan_err!(
                            "node {} (ShuffleRead) takes at most one tree input",
                            n.id
                        ));
                    }
                    if let Some(&c) = n.inputs.first() {
                        if !matches!(self.nodes[c.index()].kind, PhysKind::ShuffleWrite { .. }) {
                            return Err(plan_err!(
                                "node {} (ShuffleRead) tree input {c} is not a ShuffleWrite",
                                n.id
                            ));
                        }
                    }
                }
                other => {
                    let arity = match other {
                        PhysKind::Scan { .. } | PhysKind::ExternalSource { .. } => 0,
                        PhysKind::HashJoin { .. } | PhysKind::SemiJoin { .. } => 2,
                        _ => 1,
                    };
                    if n.inputs.len() != arity {
                        return Err(plan_err!(
                            "node {} ({}) expects {arity} inputs, has {}",
                            n.id,
                            n.kind.name(),
                            n.inputs.len()
                        ));
                    }
                }
            }
            if let Some((col, partition, dop)) = match &n.kind {
                PhysKind::Scan { part: Some(p), .. } => Some((p.col, p.partition, p.dop)),
                PhysKind::Exchange {
                    col,
                    partition,
                    dop,
                } => Some((*col, *partition, *dop)),
                // A writer routes on `col` across `dop` partitions; it has
                // no partition index of its own, so check `col` against a
                // synthetic in-range partition.
                PhysKind::ShuffleWrite { col, dop, .. } => Some((*col, 0, *dop)),
                PhysKind::ShuffleRead { partition, dop, .. } => Some((0, *partition, *dop)),
                _ => None,
            } {
                if dop == 0 || partition >= dop {
                    return Err(plan_err!(
                        "node {} has partition {partition} out of range for dop {dop}",
                        n.id
                    ));
                }
                if col >= n.layout.len() {
                    return Err(plan_err!(
                        "node {} partitions on column {col} outside its layout",
                        n.id
                    ));
                }
            }
            for c in &n.inputs {
                if c.index() >= i {
                    return Err(plan_err!("node {} references non-prior child {c}", n.id));
                }
            }
        }
        self.validate_meshes()
    }

    /// Cross-node shuffle-mesh invariants: each mesh has exactly `writers`
    /// writers (indices 0..writers) and `dop` readers (partitions 0..dop),
    /// all agreeing on the grid shape and row layout, with every writer
    /// preceding every reader in arena order (so the single-threaded oracle
    /// can materialize writers before readers gather from them).
    fn validate_meshes(&self) -> Result<()> {
        #[derive(Default)]
        struct Mesh {
            writer_idx: Vec<u32>,
            reader_parts: Vec<u32>,
            dops: Vec<u32>,
            expected_writers: Vec<u32>,
            layouts: Vec<usize>, // arena index of each member, for layout checks
            salts: Vec<Option<SaltSpec>>,
            last_writer: usize,
            first_reader: usize,
        }
        let mut meshes: std::collections::BTreeMap<u32, Mesh> = std::collections::BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            match &n.kind {
                PhysKind::ShuffleWrite {
                    mesh,
                    writer,
                    dop,
                    salt,
                    ..
                } => {
                    let e = meshes.entry(*mesh).or_insert_with(|| Mesh {
                        first_reader: usize::MAX,
                        ..Mesh::default()
                    });
                    e.writer_idx.push(*writer);
                    e.dops.push(*dop);
                    e.layouts.push(i);
                    e.salts.push(salt.clone());
                    e.last_writer = e.last_writer.max(i);
                }
                PhysKind::ShuffleRead {
                    mesh,
                    partition,
                    writers,
                    dop,
                } => {
                    let e = meshes.entry(*mesh).or_insert_with(|| Mesh {
                        first_reader: usize::MAX,
                        ..Mesh::default()
                    });
                    e.reader_parts.push(*partition);
                    e.dops.push(*dop);
                    e.expected_writers.push(*writers);
                    e.layouts.push(i);
                    e.first_reader = e.first_reader.min(i);
                }
                _ => {}
            }
        }
        for (mesh, mut m) in meshes {
            let dop = m.dops[0];
            if m.dops.iter().any(|&d| d != dop) {
                return Err(plan_err!("mesh {mesh} nodes disagree on dop"));
            }
            let writers = m.writer_idx.len() as u32;
            if m.reader_parts.len() as u32 != dop {
                return Err(plan_err!(
                    "mesh {mesh} has {} readers for dop {dop}",
                    m.reader_parts.len()
                ));
            }
            if m.expected_writers.iter().any(|&w| w != writers) {
                return Err(plan_err!(
                    "mesh {mesh} readers expect a writer count other than {writers}"
                ));
            }
            m.writer_idx.sort_unstable();
            m.reader_parts.sort_unstable();
            if m.writer_idx.iter().enumerate().any(|(i, &w)| w != i as u32)
                || m.reader_parts
                    .iter()
                    .enumerate()
                    .any(|(i, &p)| p != i as u32)
            {
                return Err(plan_err!("mesh {mesh} writer/partition indices not dense"));
            }
            let layout = &self.nodes[m.layouts[0]].layout;
            if m.layouts.iter().any(|&i| &self.nodes[i].layout != layout) {
                return Err(plan_err!("mesh {mesh} members disagree on layout"));
            }
            // Salting must be uniform across a mesh's writers: a reader's
            // multiset is only correct when every writer agrees on which
            // keys route outside the hash invariant (and how).
            if m.salts.windows(2).any(|w| w[0] != w[1]) {
                return Err(plan_err!("mesh {mesh} writers disagree on salt spec"));
            }
            if m.last_writer > m.first_reader {
                return Err(plan_err!(
                    "mesh {mesh} has a writer after a reader in arena order"
                ));
            }
        }
        Ok(())
    }

    /// Node accessor.
    pub fn node(&self, op: OpId) -> &PhysNode {
        &self.nodes[op.index()]
    }

    /// The parent of `op`, if any.
    pub fn parent(&self, op: OpId) -> Option<OpId> {
        self.nodes
            .iter()
            .find(|n| n.inputs.contains(&op))
            .map(|n| n.id)
    }

    /// Path from `op` (exclusive) to the root (inclusive).
    pub fn ancestors(&self, op: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        let mut cur = op;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Depth of `op` below the root (root = 0).
    pub fn depth(&self, op: OpId) -> usize {
        self.ancestors(op).len()
    }

    /// The other input of `op`'s parent join, when the parent is a join.
    pub fn join_sibling(&self, op: OpId) -> Option<OpId> {
        let p = self.parent(op)?;
        let pn = self.node(p);
        if !matches!(pn.kind, PhysKind::HashJoin { .. }) {
            return None;
        }
        pn.inputs.iter().copied().find(|&c| c != op)
    }

    /// All stateful operators.
    pub fn stateful_nodes(&self) -> Vec<OpId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_stateful())
            .map(|n| n.id)
            .collect()
    }

    /// Nodes (in arena order = topological) whose output layout carries
    /// `attr`.
    pub fn nodes_with_attr(&self, attr: AttrId) -> Vec<OpId> {
        self.nodes
            .iter()
            .filter(|n| n.layout.contains(&attr))
            .map(|n| n.id)
            .collect()
    }

    /// The lowest (first-producing) node carrying `attr`.
    pub fn introducer(&self, attr: AttrId) -> Option<OpId> {
        self.nodes_with_attr(attr).into_iter().next()
    }

    /// Pretty-print the plan tree.
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.fmt_node(self.root, 0, &mut out);
        out
    }

    fn fmt_node(&self, op: OpId, depth: usize, out: &mut String) {
        let n = self.node(op);
        let pad = "  ".repeat(depth);
        let detail = match &n.kind {
            PhysKind::Scan {
                table,
                binding,
                part,
                ..
            } => {
                let part = match part {
                    Some(p) if p.rowid => format!(" [rowid part {}/{}]", p.partition, p.dop),
                    Some(p) => format!(" [part {}/{}]", p.partition, p.dop),
                    None => String::new(),
                };
                format!(
                    "{} as {} ({} rows){part}",
                    table.name(),
                    binding,
                    table.len()
                )
            }
            PhysKind::Filter { predicate } => format!("{predicate}"),
            PhysKind::Project { exprs } => format!("{} exprs", exprs.len()),
            PhysKind::HashJoin {
                left_keys,
                right_keys,
                ..
            } => format!("L{left_keys:?} = R{right_keys:?}"),
            PhysKind::Aggregate { group_cols, aggs } => {
                format!("group{group_cols:?} x {} aggs", aggs.len())
            }
            PhysKind::Distinct => String::new(),
            PhysKind::SemiJoin {
                probe_keys,
                build_keys,
            } => {
                format!("P{probe_keys:?} ⋉ B{build_keys:?}")
            }
            PhysKind::ExternalSource { label } => label.clone(),
            PhysKind::Exchange {
                col,
                partition,
                dop,
            } => format!("hash(col{col}) -> {partition}/{dop}"),
            PhysKind::Merge => format!("{} inputs", n.inputs.len()),
            PhysKind::ShuffleWrite {
                mesh,
                col,
                writer,
                dop,
                salt,
            } => {
                let salt = match salt {
                    None => String::new(),
                    Some(s) => {
                        let role = match s.role {
                            SaltRole::Scatter => "scatter",
                            SaltRole::Broadcast => "broadcast",
                        };
                        match s.keys.len() {
                            Some(n) => format!(" [salt {role} {n} keys]"),
                            None => format!(" [salt {role} all]"),
                        }
                    }
                };
                format!("mesh{mesh} hash(col{col}) from {writer} -> {dop} parts{salt}")
            }
            PhysKind::ShuffleRead {
                mesh,
                partition,
                writers,
                dop,
            } => format!("mesh{mesh} part {partition}/{dop} <- {writers} writers"),
        };
        let names: Vec<String> = n.layout.iter().map(|&a| self.attrs.name(a)).collect();
        let _ = writeln!(
            out,
            "{pad}{} {} {} [{}]",
            n.id,
            n.kind.name(),
            detail,
            names.join(", ")
        );
        for &c in &n.inputs {
            self.fmt_node(c, depth + 1, out);
        }
    }
}

/// Lower a validated logical plan into a physical plan, binding every
/// expression to concrete row positions and resolving tables in `catalog`.
pub fn lower(plan: &LogicalPlan, attrs: AttrCatalog, catalog: &Catalog) -> Result<PhysPlan> {
    plan.validate()?;
    let mut nodes: Vec<PhysNode> = Vec::new();
    let root = lower_node(plan, catalog, &mut nodes)?;
    PhysPlan::from_nodes(nodes, root, attrs)
}

fn push_node(
    nodes: &mut Vec<PhysNode>,
    kind: PhysKind,
    inputs: Vec<OpId>,
    layout: Vec<AttrId>,
) -> OpId {
    let id = OpId(nodes.len() as u32);
    nodes.push(PhysNode {
        id,
        kind,
        inputs,
        layout,
    });
    id
}

fn lower_node(plan: &LogicalPlan, catalog: &Catalog, nodes: &mut Vec<PhysNode>) -> Result<OpId> {
    match plan {
        LogicalPlan::Scan {
            table,
            binding,
            cols,
        } => {
            let t = catalog.get(table)?;
            let positions: Vec<usize> = cols.iter().map(|&(p, _)| p).collect();
            let layout: Vec<AttrId> = cols.iter().map(|&(_, a)| a).collect();
            Ok(push_node(
                nodes,
                PhysKind::Scan {
                    table: t,
                    cols: positions,
                    binding: binding.clone(),
                    part: None,
                },
                vec![],
                layout,
            ))
        }
        LogicalPlan::Filter { input, predicate } => {
            let child = lower_node(input, catalog, nodes)?;
            let layout = nodes[child.index()].layout.clone();
            let bound = predicate.bind(&layout)?;
            Ok(push_node(
                nodes,
                PhysKind::Filter { predicate: bound },
                vec![child],
                layout,
            ))
        }
        LogicalPlan::Project { input, exprs } => {
            let child = lower_node(input, catalog, nodes)?;
            let child_layout = nodes[child.index()].layout.clone();
            let mut bound = Vec::with_capacity(exprs.len());
            let mut layout = Vec::with_capacity(exprs.len());
            for (e, out_attr) in exprs {
                bound.push(e.bind(&child_layout)?);
                layout.push(*out_attr);
            }
            Ok(push_node(
                nodes,
                PhysKind::Project { exprs: bound },
                vec![child],
                layout,
            ))
        }
        LogicalPlan::Join {
            left,
            right,
            keys,
            residual,
        } => {
            let l = lower_node(left, catalog, nodes)?;
            let r = lower_node(right, catalog, nodes)?;
            let ll = nodes[l.index()].layout.clone();
            let rl = nodes[r.index()].layout.clone();
            let mut left_keys = Vec::with_capacity(keys.len());
            let mut right_keys = Vec::with_capacity(keys.len());
            for &(lk, rk) in keys {
                left_keys.push(
                    ll.iter()
                        .position(|a| *a == lk)
                        .ok_or_else(|| plan_err!("join key {lk} missing from left layout"))?,
                );
                right_keys.push(
                    rl.iter()
                        .position(|a| *a == rk)
                        .ok_or_else(|| plan_err!("join key {rk} missing from right layout"))?,
                );
            }
            let mut out_layout = ll;
            out_layout.extend(rl);
            let bound_res = residual.as_ref().map(|e| e.bind(&out_layout)).transpose()?;
            Ok(push_node(
                nodes,
                PhysKind::HashJoin {
                    left_keys,
                    right_keys,
                    residual: bound_res,
                },
                vec![l, r],
                out_layout,
            ))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let child = lower_node(input, catalog, nodes)?;
            let child_layout = nodes[child.index()].layout.clone();
            let mut group_cols = Vec::with_capacity(group_by.len());
            for g in group_by {
                group_cols.push(
                    child_layout
                        .iter()
                        .position(|a| a == g)
                        .ok_or_else(|| plan_err!("group key {g} missing from input layout"))?,
                );
            }
            let mut bound = Vec::with_capacity(aggs.len());
            let mut layout = group_by.clone();
            for a in aggs {
                bound.push(BoundAgg {
                    func: a.func,
                    input: a.input.bind(&child_layout)?,
                });
                layout.push(a.output);
            }
            Ok(push_node(
                nodes,
                PhysKind::Aggregate {
                    group_cols,
                    aggs: bound,
                },
                vec![child],
                layout,
            ))
        }
        LogicalPlan::Distinct { input } => {
            let child = lower_node(input, catalog, nodes)?;
            let layout = nodes[child.index()].layout.clone();
            Ok(push_node(nodes, PhysKind::Distinct, vec![child], layout))
        }
        LogicalPlan::SemiJoin { probe, build, keys } => {
            let p = lower_node(probe, catalog, nodes)?;
            let b = lower_node(build, catalog, nodes)?;
            let pl = nodes[p.index()].layout.clone();
            let bl = nodes[b.index()].layout.clone();
            let mut probe_keys = Vec::with_capacity(keys.len());
            let mut build_keys = Vec::with_capacity(keys.len());
            for &(pk, bk) in keys {
                probe_keys.push(
                    pl.iter()
                        .position(|a| *a == pk)
                        .ok_or_else(|| plan_err!("semijoin probe key {pk} missing"))?,
                );
                build_keys.push(
                    bl.iter()
                        .position(|a| *a == bk)
                        .ok_or_else(|| plan_err!("semijoin build key {bk} missing"))?,
                );
            }
            Ok(push_node(
                nodes,
                PhysKind::SemiJoin {
                    probe_keys,
                    build_keys,
                },
                vec![p, b],
                pl,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, TpchConfig};
    use sip_plan::QueryBuilder;

    fn catalog() -> Catalog {
        generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 31,
            zipf_z: 0.0,
        })
        .unwrap()
    }

    fn sample_plan(c: &Catalog) -> PhysPlan {
        let mut q = QueryBuilder::new(c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let pred = p.col("p_size").unwrap().eq(Expr::lit(1i64));
        let p = q.filter(p, pred);
        let ps = q
            .scan("partsupp", "ps", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let qty = ps.col("ps_availqty").unwrap();
        let agg = q
            .aggregate(ps, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
            .unwrap();
        let j = q.join(p, agg, &[("p.p_partkey", "ps.ps_partkey")]).unwrap();
        let out = q.project_cols(j, &["p.p_partkey", "avail"]).unwrap();
        let plan = out.into_plan();
        lower(&plan, q.into_attrs(), c).unwrap()
    }

    #[test]
    fn lowering_produces_valid_postorder() {
        let c = catalog();
        let plan = sample_plan(&c);
        plan.validate().unwrap();
        assert_eq!(plan.root.index(), plan.nodes.len() - 1);
        // Scan, Filter, Scan, Aggregate, HashJoin, Project.
        assert_eq!(plan.nodes.len(), 6);
        assert!(matches!(
            plan.node(plan.root).kind,
            PhysKind::Project { .. }
        ));
    }

    #[test]
    fn layouts_and_keys_align() {
        let c = catalog();
        let plan = sample_plan(&c);
        let join = plan
            .nodes
            .iter()
            .find(|n| matches!(n.kind, PhysKind::HashJoin { .. }))
            .unwrap();
        if let PhysKind::HashJoin {
            left_keys,
            right_keys,
            ..
        } = &join.kind
        {
            assert_eq!(left_keys, &vec![0]);
            assert_eq!(right_keys, &vec![0]);
        }
        // Join output = left layout ++ right layout.
        assert_eq!(join.layout.len(), 4);
    }

    #[test]
    fn tree_navigation() {
        let c = catalog();
        let plan = sample_plan(&c);
        let join_id = plan
            .nodes
            .iter()
            .find(|n| matches!(n.kind, PhysKind::HashJoin { .. }))
            .unwrap()
            .id;
        let filter_id = plan
            .nodes
            .iter()
            .find(|n| matches!(n.kind, PhysKind::Filter { .. }))
            .unwrap()
            .id;
        assert_eq!(plan.parent(filter_id), Some(join_id));
        assert_eq!(plan.parent(plan.root), None);
        assert!(plan.ancestors(filter_id).contains(&plan.root));
        assert_eq!(plan.depth(plan.root), 0);
        assert!(plan.depth(filter_id) >= 1);
        // Sibling of the filter under the join is the aggregate.
        let sib = plan.join_sibling(filter_id).unwrap();
        assert!(matches!(plan.node(sib).kind, PhysKind::Aggregate { .. }));
    }

    #[test]
    fn stateful_and_attr_lookup() {
        let c = catalog();
        let plan = sample_plan(&c);
        let stateful = plan.stateful_nodes();
        assert_eq!(stateful.len(), 2); // aggregate + join
                                       // p_partkey appears at the part scan, filter, join, project.
        let p_partkey = plan
            .attrs
            .iter()
            .find(|i| i.name == "p.p_partkey")
            .unwrap()
            .id;
        let nodes = plan.nodes_with_attr(p_partkey);
        assert!(nodes.len() >= 3);
        assert_eq!(plan.introducer(p_partkey), Some(nodes[0]));
        // Introducer of the scan attr is the scan itself.
        assert!(matches!(
            plan.node(plan.introducer(p_partkey).unwrap()).kind,
            PhysKind::Scan { .. }
        ));
    }

    #[test]
    fn display_contains_operators() {
        let c = catalog();
        let plan = sample_plan(&c);
        let text = plan.display();
        assert!(text.contains("HashJoin"));
        assert!(text.contains("Aggregate"));
        assert!(text.contains("part as p"));
    }

    #[test]
    fn validation_rejects_bad_arity() {
        let c = catalog();
        let plan = sample_plan(&c);
        let mut nodes = plan.nodes.clone();
        // Corrupt: make the join unary.
        for n in nodes.iter_mut() {
            if matches!(n.kind, PhysKind::HashJoin { .. }) {
                n.inputs.pop();
            }
        }
        assert!(PhysPlan::from_nodes(nodes, plan.root, plan.attrs.clone()).is_err());
    }
}
