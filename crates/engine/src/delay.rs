//! Source-delay models.
//!
//! §VI-B of the paper delays the PARTSUPP relation "by 100msec and
//! rate-limited by injecting a 5msec delay every 1000 tuples" to emulate
//! wide-area sources. [`DelayModel`] reproduces exactly that shape.

use sip_common::{Result, SipError};
use std::time::Duration;

/// A delay model applied by a scan (or simulated remote source).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayModel {
    /// One-time delay before the first tuple.
    pub initial: Duration,
    /// Emit a pause every `every_n` tuples (0 disables rate limiting).
    pub every_n: u64,
    /// The recurring pause.
    pub pause: Duration,
}

impl DelayModel {
    /// No delay at all.
    pub fn none() -> Self {
        DelayModel {
            initial: Duration::ZERO,
            every_n: 0,
            pause: Duration::ZERO,
        }
    }

    /// The paper's §VI-B configuration: 100 ms initial + 5 ms per 1000 tuples.
    pub fn paper_delayed() -> Self {
        DelayModel {
            initial: Duration::from_millis(100),
            every_n: 1000,
            pause: Duration::from_millis(5),
        }
    }

    /// A pure initial delay.
    pub fn initial_only(d: Duration) -> Self {
        DelayModel {
            initial: d,
            every_n: 0,
            pause: Duration::ZERO,
        }
    }

    /// Build a validated model: a recurring `pause` with `every_n == 0` is
    /// rejected instead of silently never firing (the zero divisor used to
    /// fall back to "no pauses", turning a misconfigured rate limit into an
    /// undelayed source). Mirrors [`crate::ExecOptions::validated`].
    pub fn validated(initial: Duration, every_n: u64, pause: Duration) -> Result<Self> {
        let m = DelayModel {
            initial,
            every_n,
            pause,
        };
        m.validate()?;
        Ok(m)
    }

    /// Check internal consistency (see [`DelayModel::validated`]).
    pub fn validate(&self) -> Result<()> {
        if self.every_n == 0 && !self.pause.is_zero() {
            return Err(SipError::Config(format!(
                "DelayModel: pause {:?} with every_n == 0 would never fire; \
                 set every_n >= 1 or drop the pause",
                self.pause
            )));
        }
        Ok(())
    }

    /// Is this effectively no delay?
    pub fn is_none(&self) -> bool {
        self.initial.is_zero() && (self.every_n == 0 || self.pause.is_zero())
    }

    /// Total sleep this model adds across `n` tuples. (`every_n == 0`
    /// means no rate limiting; validation guarantees `pause` is zero then,
    /// so the skipped division cannot hide a configured pause.)
    pub fn total_for(&self, n: u64) -> Duration {
        let pauses = n.checked_div(self.every_n).unwrap_or(0);
        self.initial + self.pause * pauses as u32
    }
}

/// Tracks progress through a [`DelayModel`] during a scan.
#[derive(Debug)]
pub struct DelayState {
    model: DelayModel,
    emitted: u64,
    started: bool,
}

impl DelayState {
    /// Start tracking a model.
    pub fn new(model: DelayModel) -> Self {
        DelayState {
            model,
            emitted: 0,
            started: false,
        }
    }

    /// Account for `n` more tuples; returns how long the caller must sleep
    /// before emitting them.
    pub fn advance(&mut self, n: u64) -> Duration {
        let mut sleep = Duration::ZERO;
        if !self.started {
            self.started = true;
            sleep += self.model.initial;
        }
        if let Some(before) = self.emitted.checked_div(self.model.every_n) {
            let after = (self.emitted + n) / self.model.every_n;
            sleep += self.model.pause * (after - before) as u32;
        }
        self.emitted += n;
        sleep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero() {
        let m = DelayModel::none();
        assert!(m.is_none());
        assert_eq!(m.total_for(1_000_000), Duration::ZERO);
    }

    #[test]
    fn paper_model_matches_spec() {
        let m = DelayModel::paper_delayed();
        assert_eq!(m.initial, Duration::from_millis(100));
        // 10k tuples → 10 pauses of 5 ms + 100 ms initial.
        assert_eq!(m.total_for(10_000), Duration::from_millis(150));
    }

    #[test]
    fn state_advances_in_batches() {
        let mut s = DelayState::new(DelayModel {
            initial: Duration::from_millis(7),
            every_n: 100,
            pause: Duration::from_millis(1),
        });
        // First batch pays the initial delay.
        assert_eq!(s.advance(50), Duration::from_millis(7));
        // Crossing the 100-tuple boundary pays one pause.
        assert_eq!(s.advance(60), Duration::from_millis(1));
        // Not crossing: no pause.
        assert_eq!(s.advance(10), Duration::ZERO);
        // Crossing three boundaries at once pays three pauses.
        assert_eq!(s.advance(300), Duration::from_millis(3));
    }

    #[test]
    fn pause_without_period_is_rejected() {
        let err = DelayModel::validated(Duration::ZERO, 0, Duration::from_millis(5));
        assert!(err.is_err(), "every_n == 0 with a pause must not validate");
        // The legitimate every_n == 0 shapes still pass: no delay at all,
        // and a pure initial delay.
        assert!(DelayModel::none().validate().is_ok());
        assert!(DelayModel::initial_only(Duration::from_millis(9))
            .validate()
            .is_ok());
        assert!(DelayModel::paper_delayed().validate().is_ok());
        let ok = DelayModel::validated(Duration::from_millis(1), 100, Duration::from_millis(2));
        assert_eq!(ok.unwrap().total_for(1000), Duration::from_millis(21));
    }

    #[test]
    fn initial_only_fires_once() {
        let mut s = DelayState::new(DelayModel::initial_only(Duration::from_millis(5)));
        assert_eq!(s.advance(1), Duration::from_millis(5));
        assert_eq!(s.advance(1_000), Duration::ZERO);
    }
}
