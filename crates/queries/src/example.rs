//! The paper's running example (Example 2.1 / Fig. 1): parts available for
//! much less than retail whose stock on hand is low relative to sales.
//!
//! The plan matches Fig. 1 exactly: a DISTINCT over the top join of
//! * σ(2·supplycost < retailprice)(P ⋈ PS1), projected to PARTKEY (†),
//! * γ SUM(availqty) per PARTKEY over PS2,
//! * γ SUM(quantity) per PARTKEY over σ(receiptdate > cutoff)(L)  (‡),
//!
//! with the `avail` vs `numsold` comparison as the top residual.
//!
//! Two constants are rescaled to the generated data regime (documented in
//! DESIGN.md): the receipt-date cutoff (the paper's '2007-1-1' sits outside
//! the 1992-1998 dbgen date domain) and the low-stock factor.

use crate::QueryDef;
use sip_common::{Date, Result};
use sip_core::QuerySpec;
use sip_data::Catalog;
use sip_expr::{AggFunc, CmpOp, Expr};
use sip_plan::QueryBuilder;

/// Descriptor.
pub const DEF: QueryDef = QueryDef {
    id: "EX",
    family: "Fig.1",
    description: "running example: cheap-to-supply parts with low stock vs recent sales",
    sql: SQL,
    skewed_data: false,
    remote_table: None,
};

const SQL: &str = "select distinct p_partkey from part p, partsupp ps1, (select ps_partkey \
as partkey, sum(ps_availqty) as avail from partsupp ps2 group by ps_partkey) avail, (select \
l_partkey as partkey, sum(l_quantity) as numsold from lineitem l where l_receiptdate > \
'1996-01-01' group by l_partkey) sold where p_partkey = ps_partkey and p_partkey = \
avail.partkey and p_partkey = sold.partkey and avail < 50 * numsold and 2 * ps_supplycost < \
p_retailprice";

/// Build the Fig. 1 plan.
pub fn build(catalog: &Catalog) -> Result<QuerySpec> {
    let mut q = QueryBuilder::new(catalog);

    // Left subtree (†): P ⋈ PS1 with the margin predicate, distinct partkeys.
    let p = q.scan("part", "p", &["p_partkey", "p_retailprice"])?;
    let ps1 = q.scan("partsupp", "ps1", &["ps_partkey", "ps_supplycost"])?;
    let margin = ps1
        .col("ps_supplycost")?
        .mul(Expr::lit(2.0f64))
        .cmp(CmpOp::Lt, p.col("p_retailprice")?);
    let left = q.join_residual(p, ps1, &[("p.p_partkey", "ps1.ps_partkey")], Some(margin))?;
    let left = q.distinct(q.project_cols(left, &["p.p_partkey"])?);

    // Availability: γ SUM(ps_availqty) per partkey over PS2.
    let ps2 = q.scan("partsupp", "ps2", &["ps_partkey", "ps_availqty"])?;
    let qty = ps2.col("ps_availqty")?;
    let avail = q.aggregate(ps2, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])?;

    // Sales (‡): γ SUM(l_quantity) per partkey over recent lineitems.
    let l = q.scan(
        "lineitem",
        "l",
        &["l_partkey", "l_quantity", "l_receiptdate"],
    )?;
    let recent = l
        .col("l_receiptdate")?
        .gt(Expr::lit(Date::parse("1996-01-01").unwrap()));
    let l = q.filter(l, recent);
    let lq = l.col("l_quantity")?;
    let sold = q.aggregate(l, &["l_partkey"], &[(AggFunc::Sum, lq, "numsold")])?;

    // Root joins with the low-stock residual.
    let j1 = q.join(left, avail, &[("p.p_partkey", "ps2.ps_partkey")])?;
    let low_stock = j1.col("avail")?.cmp(
        CmpOp::Lt,
        Expr::lit(50.0f64).mul(Expr::attr(sold.attr("numsold")?)),
    );
    let j2 = q.join_residual(j1, sold, &[("p.p_partkey", "l.l_partkey")], Some(low_stock))?;
    let out = q.distinct(q.project_cols(j2, &["p.p_partkey"])?);
    QuerySpec::new(out.into_plan(), q.into_attrs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, TpchConfig};

    #[test]
    fn validates_and_matches_fig1_shape() {
        let c = generate(&TpchConfig::uniform(0.005)).unwrap();
        let spec = build(&c).unwrap();
        spec.plan.validate().unwrap();
        assert_eq!(spec.plan.output_attrs().len(), 1);
        assert_eq!(spec.plan.bindings(), vec!["p", "ps1", "ps2", "l"]);
        let text = spec.plan.display(&spec.attrs);
        // Two aggregations and a distinct, as in Fig. 1.
        assert_eq!(text.matches("Aggregate").count(), 2, "{text}");
        assert!(text.contains("Distinct"));
    }

    #[test]
    fn produces_rows() {
        let c = generate(&TpchConfig::uniform(0.01)).unwrap();
        let spec = build(&c).unwrap();
        let phys = spec.lower(&c, sip_core::Strategy::Baseline).unwrap();
        let rows = sip_engine::execute_oracle(&phys).unwrap();
        assert!(!rows.is_empty());
    }
}
