//! TPC-H Query 5 family (single-block, many-way join): Q4A (normal), Q4B
//! (fewer suppliers).

use crate::{key_cut, QueryDef};
use sip_common::Result;
use sip_core::QuerySpec;
use sip_data::Catalog;
use sip_expr::{AggFunc, CmpOp, Expr};
use sip_plan::QueryBuilder;

/// The Q4 variants of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Q4A.
    Normal,
    /// Q4B: lineitem restricted to the low 10% of supplier keys (the
    /// paper's `l_suppkey < 1000` against 10 k suppliers).
    FewerSuppliers,
}

/// Descriptors for the family.
pub const DEFS: [QueryDef; 2] = [
    QueryDef {
        id: "Q4A",
        family: "TPCH-5",
        description: "normal",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
    QueryDef {
        id: "Q4B",
        family: "TPCH-5",
        description: "fewer suppliers: l_suppkey in lowest 10% of keys",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
];

const SQL: &str = "select n_name, sum(l_extendedprice * (1 - l_discount)) from customer, \
orders, lineitem, supplier, nation, region where c_custkey = o_custkey and l_orderkey = \
o_orderkey and l_suppkey = s_suppkey and c_nationkey = s_nationkey and s_nationkey = \
n_nationkey and n_regionkey = r_regionkey and r_name = 'MIDDLE EAST' and o_orderdate >= \
'1995-01-01' and o_orderdate < '1996-01-01' group by n_name";

/// Build a Q4 variant.
pub fn build(catalog: &Catalog, variant: Variant) -> Result<QuerySpec> {
    let supp_cut = key_cut(catalog, "supplier", 0.10);
    let mut q = QueryBuilder::new(catalog);

    // Left bushy side: customer ⋈ orders(σ date) ⋈ lineitem.
    let cst = q.scan("customer", "c", &["c_custkey", "c_nationkey"])?;
    let o = q.scan("orders", "o", &["o_orderkey", "o_custkey", "o_orderdate"])?;
    let date_lo = Expr::lit(sip_common::Date::parse("1995-01-01").unwrap());
    let date_hi = Expr::lit(sip_common::Date::parse("1996-01-01").unwrap());
    let o_pred = o
        .col("o_orderdate")?
        .ge(date_lo)
        .and(o.col("o_orderdate")?.cmp(CmpOp::Lt, date_hi));
    let o = q.filter(o, o_pred);
    let co = q.join(cst, o, &[("c.c_custkey", "o.o_custkey")])?;
    let l = q.scan(
        "lineitem",
        "l",
        &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
    )?;
    let l = match variant {
        Variant::FewerSuppliers => {
            let pred = l.col("l_suppkey")?.cmp(CmpOp::Lt, Expr::lit(supp_cut));
            q.filter(l, pred)
        }
        Variant::Normal => l,
    };
    let col = q.join(co, l, &[("o.o_orderkey", "l.l_orderkey")])?;

    // Right bushy side: supplier ⋈ (nation ⋈ region(σ)).
    let s = q.scan("supplier", "s", &["s_suppkey", "s_nationkey"])?;
    let n = q.scan("nation", "n", &["n_nationkey", "n_name", "n_regionkey"])?;
    let r = q.scan("region", "r", &["r_regionkey", "r_name"])?;
    let r_pred = r.col("r_name")?.eq(Expr::lit("MIDDLE EAST"));
    let r = q.filter(r, r_pred);
    let nr = q.join(n, r, &[("n.n_regionkey", "r.r_regionkey")])?;
    let snr = q.join(s, nr, &[("s.s_nationkey", "n.n_nationkey")])?;

    // Top join: supplier key AND the customer-supplier nation equality.
    let joined = q.join(
        col,
        snr,
        &[
            ("l.l_suppkey", "s.s_suppkey"),
            ("c.c_nationkey", "s.s_nationkey"),
        ],
    )?;
    let revenue = joined
        .col("l_extendedprice")?
        .mul(Expr::lit(1.0f64).sub(joined.col("l_discount")?));
    let agg = q.aggregate(joined, &["n_name"], &[(AggFunc::Sum, revenue, "revenue")])?;
    QuerySpec::new(agg.into_plan(), q.into_attrs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, TpchConfig};

    #[test]
    fn variants_validate() {
        let c = generate(&TpchConfig::uniform(0.005)).unwrap();
        for v in [Variant::Normal, Variant::FewerSuppliers] {
            let spec = build(&c, v).unwrap();
            spec.plan.validate().unwrap();
            assert_eq!(spec.plan.output_attrs().len(), 2, "{v:?}");
            assert_eq!(spec.plan.bindings().len(), 6, "{v:?}");
        }
    }

    #[test]
    fn produces_grouped_rows() {
        let c = generate(&TpchConfig::uniform(0.01)).unwrap();
        let spec = build(&c, Variant::Normal).unwrap();
        let phys = spec.lower(&c, sip_core::Strategy::Baseline).unwrap();
        let rows = sip_engine::execute_oracle(&phys).unwrap();
        assert!(!rows.is_empty());
        // At most 5 nations in the MIDDLE EAST region.
        assert!(rows.len() <= 5, "{}", rows.len());
    }

    #[test]
    fn fewer_suppliers_is_subset_sized() {
        let c = generate(&TpchConfig::uniform(0.01)).unwrap();
        let a = build(&c, Variant::Normal).unwrap();
        let b = build(&c, Variant::FewerSuppliers).unwrap();
        let ra = sip_engine::execute_oracle(&a.lower(&c, sip_core::Strategy::Baseline).unwrap())
            .unwrap();
        let rb = sip_engine::execute_oracle(&b.lower(&c, sip_core::Strategy::Baseline).unwrap())
            .unwrap();
        assert!(rb.len() <= ra.len());
    }
}
