//! TPC-H Query 2 family: Q1A (normal), Q1B (skewed data), Q1C (remote
//! PARTSUPP), Q1D (child weaker), Q1E (parent weaker).
//!
//! The correlated `ps_supplycost = (select min(ps_supplycost) ...)`
//! subquery is decorrelated in the standard way: the subquery becomes a
//! per-partkey MIN aggregation over its own (partsupp ⋈ supplier ⋈ nation ⋈
//! region) join tree, joined back to the outer block on partkey with the
//! residual `ps_supplycost = min_cost` — the bushy shape push engines use.

use crate::QueryDef;
use sip_common::Result;
use sip_core::QuerySpec;
use sip_data::Catalog;
use sip_expr::{AggFunc, CmpOp, Expr};
use sip_plan::{QueryBuilder, Rel};

/// The Q1 variants of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Q1A/Q1B/Q1C: `p_size = 1`, `p_type like '%TIN'`, `r_name = 'AFRICA'`
    /// in both blocks.
    Normal,
    /// Q1D: child region predicate weakened to `r_name < 'S'`, outer
    /// `p_type` constraint dropped.
    ChildWeaker,
    /// Q1E: outer predicates weakened to `p_type < 'TIN'`, `r_name < 'S'`.
    ParentWeaker,
}

/// Descriptors for the family.
pub const DEFS: [QueryDef; 5] = [
    QueryDef {
        id: "Q1A",
        family: "TPCH-2",
        description: "normal",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
    QueryDef {
        id: "Q1B",
        family: "TPCH-2",
        description: "skewed data (Zipf z=0.5)",
        sql: SQL,
        skewed_data: true,
        remote_table: None,
    },
    QueryDef {
        id: "Q1C",
        family: "TPCH-2",
        description: "PARTSUPP fetched from a remote site",
        sql: SQL,
        skewed_data: false,
        remote_table: Some("partsupp"),
    },
    QueryDef {
        id: "Q1D",
        family: "TPCH-2",
        description: "child weaker: child r_name < 'S', no p_type constraint",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
    QueryDef {
        id: "Q1E",
        family: "TPCH-2",
        description: "parent weaker: parent p_type < 'TIN' and r_name < 'S'",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
];

const SQL: &str = "select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, \
s_comment from part, supplier, partsupp, nation, region where p_partkey = ps_partkey and \
s_suppkey = ps_suppkey and p_size = 1 and p_type like '%TIN' and s_nationkey = n_nationkey \
and n_regionkey = r_regionkey and r_name = 'AFRICA' and ps_supplycost = (select \
min(ps_supplycost) from partsupp, supplier, nation, region where p_partkey = ps_partkey and \
s_suppkey = ps_suppkey and s_nationkey = n_nationkey and n_regionkey = r_regionkey and \
r_name = 'AFRICA')";

/// Supplier ⋈ nation ⋈ region subtree with a region predicate, under
/// distinct bindings per block.
fn supplier_region(
    q: &mut QueryBuilder<'_>,
    suffix: &str,
    region_pred: impl FnOnce(&Rel) -> Result<Expr>,
    supplier_cols: &[&str],
) -> Result<Rel> {
    let s = q.scan("supplier", &format!("s{suffix}"), supplier_cols)?;
    let n = q.scan(
        "nation",
        &format!("n{suffix}"),
        &["n_nationkey", "n_name", "n_regionkey"],
    )?;
    let r = q.scan("region", &format!("r{suffix}"), &["r_regionkey", "r_name"])?;
    let pred = region_pred(&r)?;
    let r = q.filter(r, pred);
    let nr = q.join(
        n,
        r,
        &[(
            &format!("n{suffix}.n_regionkey"),
            &format!("r{suffix}.r_regionkey"),
        )],
    )?;
    q.join(
        s,
        nr,
        &[(
            &format!("s{suffix}.s_nationkey"),
            &format!("n{suffix}.n_nationkey"),
        )],
    )
}

/// Build a Q1 variant.
pub fn build(catalog: &Catalog, variant: Variant) -> Result<QuerySpec> {
    let mut q = QueryBuilder::new(catalog);

    // Outer block: part(σ) ⋈ ps1 ⋈ (s1 ⋈ n1 ⋈ r1(σ)).
    let p = q.scan("part", "p", &["p_partkey", "p_mfgr", "p_size", "p_type"])?;
    let p_pred = match variant {
        Variant::Normal => p
            .col("p_size")?
            .eq(Expr::lit(1i64))
            .and(p.col("p_type")?.like("%TIN")),
        Variant::ChildWeaker => p.col("p_size")?.eq(Expr::lit(1i64)),
        Variant::ParentWeaker => p
            .col("p_type")?
            .cmp(CmpOp::Lt, Expr::lit("TIN"))
            .and(p.col("p_size")?.eq(Expr::lit(1i64))),
    };
    let p = q.filter(p, p_pred);
    let ps1 = q.scan(
        "partsupp",
        "ps1",
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    )?;
    let p_ps = q.join(p, ps1, &[("p.p_partkey", "ps1.ps_partkey")])?;
    let outer_region: fn(&Rel) -> Result<Expr> = match variant {
        Variant::ParentWeaker => |r| Ok(r.col("r_name")?.cmp(CmpOp::Lt, Expr::lit("S"))),
        _ => |r| Ok(r.col("r_name")?.eq(Expr::lit("AFRICA"))),
    };
    let snr = supplier_region(
        &mut q,
        "1",
        outer_region,
        &[
            "s_suppkey",
            "s_name",
            "s_address",
            "s_nationkey",
            "s_phone",
            "s_acctbal",
            "s_comment",
        ],
    )?;
    let outer = q.join(p_ps, snr, &[("ps1.ps_suppkey", "s1.s_suppkey")])?;

    // Subquery block: min supplycost per partkey over ps2 ⋈ s2 ⋈ n2 ⋈ r2(σ).
    let ps2 = q.scan(
        "partsupp",
        "ps2",
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    )?;
    let child_region: fn(&Rel) -> Result<Expr> = match variant {
        Variant::ChildWeaker => |r| Ok(r.col("r_name")?.cmp(CmpOp::Lt, Expr::lit("S"))),
        _ => |r| Ok(r.col("r_name")?.eq(Expr::lit("AFRICA"))),
    };
    let snr2 = supplier_region(&mut q, "2", child_region, &["s_suppkey", "s_nationkey"])?;
    let inner = q.join(ps2, snr2, &[("ps2.ps_suppkey", "s2.s_suppkey")])?;
    let cost = inner.col("ps2.ps_supplycost")?;
    let min_cost = q.aggregate(
        inner,
        &["ps2.ps_partkey"],
        &[(AggFunc::Min, cost, "min_cost")],
    )?;

    // Join the blocks: partkey correlation + the supplycost = min residual.
    let residual = outer
        .col("ps1.ps_supplycost")?
        .eq(Expr::attr(min_cost.attr("min_cost")?));
    let joined = q.join_residual(
        outer,
        min_cost,
        &[("p.p_partkey", "ps2.ps_partkey")],
        Some(residual),
    )?;
    let out = q.project_cols(
        joined,
        &[
            "s1.s_acctbal",
            "s1.s_name",
            "n1.n_name",
            "p.p_partkey",
            "p.p_mfgr",
            "s1.s_address",
            "s1.s_phone",
            "s1.s_comment",
        ],
    )?;
    QuerySpec::new(out.into_plan(), q.into_attrs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, TpchConfig};

    #[test]
    fn all_variants_validate() {
        let c = generate(&TpchConfig::uniform(0.005)).unwrap();
        for v in [Variant::Normal, Variant::ChildWeaker, Variant::ParentWeaker] {
            let spec = build(&c, v).unwrap();
            spec.plan.validate().unwrap();
            // Eight output columns, as in the SQL select list.
            assert_eq!(spec.plan.output_attrs().len(), 8, "{v:?}");
            // Ten table bindings: 5 outer + 4 inner + part... count scans.
            assert_eq!(spec.plan.bindings().len(), 9, "{v:?}");
        }
    }

    #[test]
    fn normal_variant_produces_rows() {
        let c = generate(&TpchConfig::uniform(0.02)).unwrap();
        let spec = build(&c, Variant::Normal).unwrap();
        let phys = spec.lower(&c, sip_core::Strategy::Baseline).unwrap();
        let rows = sip_engine::execute_oracle(&phys).unwrap();
        assert!(!rows.is_empty(), "Q1A returns no rows at SF 0.02");
    }

    #[test]
    fn weaker_child_returns_superset_sized_output() {
        // Weakening the child's region predicate can only lower min_cost
        // per part (more suppliers eligible), which changes which rows
        // match; the query still runs and both variants validate. Sanity:
        // both produce output at moderate scale.
        let c = generate(&TpchConfig::uniform(0.02)).unwrap();
        for v in [Variant::Normal, Variant::ChildWeaker] {
            let spec = build(&c, v).unwrap();
            let phys = spec.lower(&c, sip_core::Strategy::Baseline).unwrap();
            let rows = sip_engine::execute_oracle(&phys).unwrap();
            assert!(!rows.is_empty(), "{v:?}");
        }
    }
}
