//! The IBM complex-query-decorrelation query (ref. \[29\], Seshadri et al.) used
//! by the paper to validate magic sets: Q3A (normal), Q3B (skewed data),
//! Q3C (remote PARTSUPP), Q3D (child weaker), Q3E (parent weaker).
//!
//! Table I writes `s_nation = 'FRANCE'` as a denormalized column; the
//! TPC-H schema stores nation as a key, so both blocks join
//! supplier ⋈ nation and filter `n_name` (Q3D's `n_name >= 'FRANCE'`
//! variant confirms the join is intended). Table I's `p_type = 'BRASS'`
//! names a type *suffix* in dbgen's three-word type domain, so it becomes
//! `p_type like '%BRASS'` here (the same fraction of parts: 1/5).

use crate::QueryDef;
use sip_common::Result;
use sip_core::QuerySpec;
use sip_data::Catalog;
use sip_expr::{AggFunc, CmpOp, Expr};
use sip_plan::QueryBuilder;

/// The Q3 variants of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Q3A/Q3B/Q3C.
    Normal,
    /// Q3D: child nation predicate weakened to `n_name >= 'FRANCE'`.
    ChildWeaker,
    /// Q3E: parent omits the `p_size` predicate.
    ParentWeaker,
}

/// Descriptors for the family.
pub const DEFS: [QueryDef; 5] = [
    QueryDef {
        id: "Q3A",
        family: "IBM",
        description: "normal",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
    QueryDef {
        id: "Q3B",
        family: "IBM",
        description: "skewed data (Zipf z=0.5)",
        sql: SQL,
        skewed_data: true,
        remote_table: None,
    },
    QueryDef {
        id: "Q3C",
        family: "IBM",
        description: "PARTSUPP fetched from a remote site",
        sql: SQL,
        skewed_data: false,
        remote_table: Some("partsupp"),
    },
    QueryDef {
        id: "Q3D",
        family: "IBM",
        description: "child weaker: child n_name >= 'FRANCE'",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
    QueryDef {
        id: "Q3E",
        family: "IBM",
        description: "parent weaker: omit p_size predicate",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
];

const SQL: &str = "select s_name, s_acctbal, s_address, s_phone, s_comment from part, \
supplier, partsupp where s_nation = 'FRANCE' and p_size = 15 and p_type like '%BRASS' and \
p_partkey = ps_partkey and s_suppkey = ps_suppkey and ps_supplycost = (select \
min(ps_supplycost) from partsupp, supplier where p_partkey = ps_partkey and s_suppkey = \
ps_suppkey and s_nation = 'FRANCE')";

/// Build a Q3 variant.
pub fn build(catalog: &Catalog, variant: Variant) -> Result<QuerySpec> {
    let mut q = QueryBuilder::new(catalog);

    // Outer block.
    let p = q.scan("part", "p", &["p_partkey", "p_size", "p_type"])?;
    let p_pred = match variant {
        Variant::ParentWeaker => p.col("p_type")?.like("%BRASS"),
        _ => p
            .col("p_size")?
            .eq(Expr::lit(15i64))
            .and(p.col("p_type")?.like("%BRASS")),
    };
    let p = q.filter(p, p_pred);
    let ps1 = q.scan(
        "partsupp",
        "ps1",
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    )?;
    let p_ps = q.join(p, ps1, &[("p.p_partkey", "ps1.ps_partkey")])?;
    let s1 = q.scan(
        "supplier",
        "s1",
        &[
            "s_suppkey",
            "s_name",
            "s_address",
            "s_nationkey",
            "s_phone",
            "s_acctbal",
            "s_comment",
        ],
    )?;
    let n1 = q.scan("nation", "n1", &["n_nationkey", "n_name"])?;
    let fr1 = n1.col("n_name")?.eq(Expr::lit("FRANCE"));
    let n1 = q.filter(n1, fr1);
    let sn1 = q.join(s1, n1, &[("s1.s_nationkey", "n1.n_nationkey")])?;
    let outer = q.join(p_ps, sn1, &[("ps1.ps_suppkey", "s1.s_suppkey")])?;

    // Subquery block: min supplycost per partkey among FRANCE-ish suppliers.
    let ps2 = q.scan(
        "partsupp",
        "ps2",
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    )?;
    let s2 = q.scan("supplier", "s2", &["s_suppkey", "s_nationkey"])?;
    let n2 = q.scan("nation", "n2", &["n_nationkey", "n_name"])?;
    let child_pred = match variant {
        Variant::ChildWeaker => n2.col("n_name")?.cmp(CmpOp::Ge, Expr::lit("FRANCE")),
        _ => n2.col("n_name")?.eq(Expr::lit("FRANCE")),
    };
    let n2 = q.filter(n2, child_pred);
    let sn2 = q.join(s2, n2, &[("s2.s_nationkey", "n2.n_nationkey")])?;
    let inner = q.join(ps2, sn2, &[("ps2.ps_suppkey", "s2.s_suppkey")])?;
    let cost = inner.col("ps2.ps_supplycost")?;
    let min_cost = q.aggregate(
        inner,
        &["ps2.ps_partkey"],
        &[(AggFunc::Min, cost, "min_cost")],
    )?;

    let residual = outer
        .col("ps1.ps_supplycost")?
        .eq(Expr::attr(min_cost.attr("min_cost")?));
    let joined = q.join_residual(
        outer,
        min_cost,
        &[("p.p_partkey", "ps2.ps_partkey")],
        Some(residual),
    )?;
    let out = q.project_cols(
        joined,
        &[
            "s1.s_name",
            "s1.s_acctbal",
            "s1.s_address",
            "s1.s_phone",
            "s1.s_comment",
        ],
    )?;
    QuerySpec::new(out.into_plan(), q.into_attrs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, TpchConfig};

    #[test]
    fn all_variants_validate() {
        let c = generate(&TpchConfig::uniform(0.005)).unwrap();
        for v in [Variant::Normal, Variant::ChildWeaker, Variant::ParentWeaker] {
            let spec = build(&c, v).unwrap();
            spec.plan.validate().unwrap();
            assert_eq!(spec.plan.output_attrs().len(), 5, "{v:?}");
            assert_eq!(spec.plan.bindings().len(), 7, "{v:?}");
        }
    }

    #[test]
    fn produces_rows_at_scale() {
        let c = generate(&TpchConfig::uniform(0.02)).unwrap();
        let spec = build(&c, Variant::ParentWeaker).unwrap();
        let phys = spec.lower(&c, sip_core::Strategy::Baseline).unwrap();
        let rows = sip_engine::execute_oracle(&phys).unwrap();
        assert!(!rows.is_empty());
    }

    #[test]
    fn magic_rewrite_applies() {
        let c = generate(&TpchConfig::uniform(0.005)).unwrap();
        let spec = build(&c, Variant::Normal).unwrap();
        let rw = sip_optimizer::magic_rewrite(&spec.plan);
        assert_eq!(rw.blocks_rewritten, 1);
        rw.plan.validate().unwrap();
    }
}
