#![warn(missing_docs)]
//! # sip-queries
//!
//! The complete experimental workload of Table I: five query families over
//! the TPC-H-shaped schema, each with the paper's selectivity variants,
//! plus the running-example query of Fig. 1.
//!
//! Constants that encode absolute selectivities in the paper (`l_partkey <
//! 1000` against 200 k parts, `l_suppkey < 1000` against 10 k suppliers)
//! are expressed as *fractions of the generated domain* so that every
//! variant keeps the paper's selectivity at any scale factor; each builder
//! documents its scaling.

pub mod example;
pub mod ibm;
pub mod tpch17;
pub mod tpch2;
pub mod tpch5;
pub mod tpch9;

use sip_common::{Result, SipError};
use sip_core::QuerySpec;
use sip_data::Catalog;

/// Descriptor for one catalog query.
#[derive(Clone, Copy, Debug)]
pub struct QueryDef {
    /// The paper's id (`Q1A` ... `Q5B`, `EX`).
    pub id: &'static str,
    /// Query family (`TPCH-2`, `TPCH-17`, `IBM`, `TPCH-5`, `TPCH-9`, `Fig.1`).
    pub family: &'static str,
    /// Variant description from Table I.
    pub description: &'static str,
    /// SQL text (as in Table I, modulo scale-fraction constants).
    pub sql: &'static str,
    /// Runs against the Zipf-skewed data set.
    pub skewed_data: bool,
    /// Table fetched from a remote site in the distributed experiments.
    pub remote_table: Option<&'static str>,
}

/// Every query of Table I plus the running example.
pub fn all_queries() -> Vec<QueryDef> {
    let mut v = Vec::new();
    v.extend(tpch2::DEFS);
    v.extend(tpch17::DEFS);
    v.extend(ibm::DEFS);
    v.extend(tpch5::DEFS);
    v.extend(tpch9::DEFS);
    v.push(example::DEF);
    v
}

/// Look up a descriptor by id.
pub fn query_def(id: &str) -> Result<QueryDef> {
    all_queries()
        .into_iter()
        .find(|q| q.id.eq_ignore_ascii_case(id))
        .ok_or_else(|| SipError::Config(format!("unknown query id {id:?}")))
}

/// Build the logical plan for a query id against a catalog.
pub fn build_query(id: &str, catalog: &Catalog) -> Result<QuerySpec> {
    match id.to_ascii_uppercase().as_str() {
        "Q1A" | "Q1B" | "Q1C" => tpch2::build(catalog, tpch2::Variant::Normal),
        "Q1D" => tpch2::build(catalog, tpch2::Variant::ChildWeaker),
        "Q1E" => tpch2::build(catalog, tpch2::Variant::ParentWeaker),
        "Q2A" | "Q2B" => tpch17::build(catalog, tpch17::Variant::Normal),
        "Q2C" => tpch17::build(catalog, tpch17::Variant::ParentStronger),
        "Q2D" => tpch17::build(catalog, tpch17::Variant::ChildStronger),
        "Q2E" => tpch17::build(catalog, tpch17::Variant::ParentWeaker),
        "Q3A" | "Q3B" | "Q3C" => ibm::build(catalog, ibm::Variant::Normal),
        "Q3D" => ibm::build(catalog, ibm::Variant::ChildWeaker),
        "Q3E" => ibm::build(catalog, ibm::Variant::ParentWeaker),
        "Q4A" => tpch5::build(catalog, tpch5::Variant::Normal),
        "Q4B" => tpch5::build(catalog, tpch5::Variant::FewerSuppliers),
        "Q5A" => tpch9::build(catalog, tpch9::Variant::Normal),
        "Q5B" => tpch9::build(catalog, tpch9::Variant::FewerNations),
        "EX" => example::build(catalog),
        other => Err(SipError::Config(format!("unknown query id {other:?}"))),
    }
}

/// A fraction of a table's key domain, used to scale the paper's absolute
/// key-range constants (`< 1000`) to any scale factor.
pub(crate) fn key_cut(catalog: &Catalog, table: &str, fraction: f64) -> i64 {
    let n = catalog.get(table).map(|t| t.len() as f64).unwrap_or(1000.0);
    ((n * fraction).round() as i64).max(2)
}
