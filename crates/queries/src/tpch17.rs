//! TPC-H Query 17 family: Q2A (normal), Q2B (skewed data), Q2C (parent
//! stronger), Q2D (child stronger), Q2E (parent weaker).
//!
//! `l_quantity < (select 0.2 * avg(l_quantity) from lineitem l2 where
//! l2.l_partkey = p_partkey)` decorrelates into a per-partkey AVG
//! aggregation over a second lineitem scan, joined back on partkey with the
//! quantity residual.

use crate::{key_cut, QueryDef};
use sip_common::Result;
use sip_core::QuerySpec;
use sip_data::Catalog;
use sip_expr::{AggFunc, CmpOp, Expr};
use sip_plan::QueryBuilder;

/// The Q2 variants of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Q2A/Q2B.
    Normal,
    /// Q2C: parent additionally restricted to the low 0.5% of partkeys
    /// (the paper's `l_partkey < 1000` against 200 k parts).
    ParentStronger,
    /// Q2D: child restricted the same way (`p_partkey < 1000` in Table I,
    /// applied to the subquery's lineitem).
    ChildStronger,
    /// Q2E: parent omits the `p_brand` predicate.
    ParentWeaker,
}

/// Descriptors for the family.
pub const DEFS: [QueryDef; 5] = [
    QueryDef {
        id: "Q2A",
        family: "TPCH-17",
        description: "normal",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
    QueryDef {
        id: "Q2B",
        family: "TPCH-17",
        description: "skewed data (Zipf z=0.5)",
        sql: SQL,
        skewed_data: true,
        remote_table: None,
    },
    QueryDef {
        id: "Q2C",
        family: "TPCH-17",
        description: "parent stronger: parent l_partkey in lowest 0.5% of keys",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
    QueryDef {
        id: "Q2D",
        family: "TPCH-17",
        description: "child stronger: child partkey in lowest 0.5% of keys",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
    QueryDef {
        id: "Q2E",
        family: "TPCH-17",
        description: "parent weaker: omit p_brand predicate",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
];

const SQL: &str = "select sum(l_extendedprice) / 7.0 from lineitem, part where p_partkey = \
l_partkey and p_brand = 'Brand#34' and p_container = 'MED CAN' and l_quantity < (select 0.2 \
* avg(l_quantity) from lineitem where l_partkey = p_partkey)";

/// Build a Q2 variant.
pub fn build(catalog: &Catalog, variant: Variant) -> Result<QuerySpec> {
    // The paper's absolute `< 1000` cut over 200 k parts = 0.5% of keys.
    let cut = key_cut(catalog, "part", 0.005);
    let mut q = QueryBuilder::new(catalog);

    let p = q.scan("part", "p", &["p_partkey", "p_brand", "p_container"])?;
    let p_pred = match variant {
        Variant::ParentWeaker => p.col("p_container")?.eq(Expr::lit("MED CAN")),
        _ => p
            .col("p_brand")?
            .eq(Expr::lit("Brand#34"))
            .and(p.col("p_container")?.eq(Expr::lit("MED CAN"))),
    };
    let p = q.filter(p, p_pred);

    let l = q.scan(
        "lineitem",
        "l",
        &["l_partkey", "l_quantity", "l_extendedprice"],
    )?;
    let l = match variant {
        Variant::ParentStronger => {
            let pred = l.col("l_partkey")?.cmp(CmpOp::Lt, Expr::lit(cut));
            q.filter(l, pred)
        }
        _ => l,
    };
    let pl = q.join(p, l, &[("p.p_partkey", "l.l_partkey")])?;

    let l2 = q.scan("lineitem", "l2", &["l_partkey", "l_quantity"])?;
    let l2 = match variant {
        Variant::ChildStronger => {
            let pred = l2.col("l_partkey")?.cmp(CmpOp::Lt, Expr::lit(cut));
            q.filter(l2, pred)
        }
        _ => l2,
    };
    let qty = l2.col("l_quantity")?;
    let avg = q.aggregate(l2, &["l_partkey"], &[(AggFunc::Avg, qty, "avg_qty")])?;

    let residual = pl
        .col("l.l_quantity")?
        .cmp(CmpOp::Lt, Expr::lit(0.2f64).mul(avg.col("avg_qty")?));
    let joined = q.join_residual(pl, avg, &[("p.p_partkey", "l2.l_partkey")], Some(residual))?;
    let price = joined.col("l.l_extendedprice")?;
    let total = q.aggregate(joined, &[], &[(AggFunc::Sum, price, "sum_price")])?;
    // Final `sum(l_extendedprice) / 7.0` projection.
    let div = total.col("sum_price")?.div(Expr::lit(7.0f64));
    let result = q.project(total, &[(div, "avg_yearly", sip_common::DataType::Float)])?;
    QuerySpec::new(result.into_plan(), q.into_attrs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, TpchConfig};

    #[test]
    fn all_variants_validate() {
        let c = generate(&TpchConfig::uniform(0.005)).unwrap();
        for v in [
            Variant::Normal,
            Variant::ParentStronger,
            Variant::ChildStronger,
            Variant::ParentWeaker,
        ] {
            let spec = build(&c, v).unwrap();
            spec.plan.validate().unwrap();
            assert_eq!(spec.plan.output_attrs().len(), 1, "{v:?}");
            assert_eq!(spec.plan.bindings(), vec!["p", "l", "l2"], "{v:?}");
        }
    }

    #[test]
    fn normal_produces_single_row() {
        let c = generate(&TpchConfig::uniform(0.01)).unwrap();
        let spec = build(&c, Variant::Normal).unwrap();
        let phys = spec.lower(&c, sip_core::Strategy::Baseline).unwrap();
        let rows = sip_engine::execute_oracle(&phys).unwrap();
        assert_eq!(rows.len(), 1); // global aggregate: one row
    }

    #[test]
    fn parent_weaker_keeps_container_only() {
        let c = generate(&TpchConfig::uniform(0.005)).unwrap();
        let spec = build(&c, Variant::ParentWeaker).unwrap();
        let text = spec.plan.display(&spec.attrs);
        assert!(text.contains("MED CAN"));
        assert!(!text.contains("Brand#34"));
    }
}
