//! TPC-H Query 9 family (single-block, six-way join with a computed
//! projection): Q5A (normal), Q5B (fewer nations).

use crate::QueryDef;
use sip_common::{DataType, Result};
use sip_core::QuerySpec;
use sip_data::Catalog;
use sip_expr::{AggFunc, CmpOp, Expr};
use sip_plan::QueryBuilder;

/// The Q5 variants of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Q5A.
    Normal,
    /// Q5B: suppliers restricted to nations with `n_nationkey < 10`.
    FewerNations,
}

/// Descriptors for the family.
pub const DEFS: [QueryDef; 2] = [
    QueryDef {
        id: "Q5A",
        family: "TPCH-9",
        description: "normal",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
    QueryDef {
        id: "Q5B",
        family: "TPCH-9",
        description: "fewer nations: n_nationkey < 10",
        sql: SQL,
        skewed_data: false,
        remote_table: None,
    },
];

const SQL: &str = "select n_name, o_year, sum(amount) from (select n_name, year(o_orderdate) \
as o_year, l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity as amount from \
part, supplier, lineitem, partsupp, orders, nation where s_suppkey = l_suppkey and \
ps_suppkey = l_suppkey and ps_partkey = l_partkey and p_partkey = l_partkey and o_orderkey \
= l_orderkey and s_nationkey = n_nationkey and p_name like '%black%') group by n_name, \
o_year";

/// Build a Q5 variant.
pub fn build(catalog: &Catalog, variant: Variant) -> Result<QuerySpec> {
    let mut q = QueryBuilder::new(catalog);

    let p = q.scan("part", "p", &["p_partkey", "p_name"])?;
    let p_pred = p.col("p_name")?.like("%black%");
    let p = q.filter(p, p_pred);
    let l = q.scan(
        "lineitem",
        "l",
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
        ],
    )?;
    let pl = q.join(p, l, &[("p.p_partkey", "l.l_partkey")])?;

    let ps = q.scan(
        "partsupp",
        "ps",
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    )?;
    let plps = q.join(
        pl,
        ps,
        &[
            ("l.l_partkey", "ps.ps_partkey"),
            ("l.l_suppkey", "ps.ps_suppkey"),
        ],
    )?;

    let o = q.scan("orders", "o", &["o_orderkey", "o_orderdate"])?;
    let plpso = q.join(plps, o, &[("l.l_orderkey", "o.o_orderkey")])?;

    // Bushy right arm: supplier ⋈ nation (the early nation join the paper
    // credits for Q5B's behaviour).
    let s = q.scan("supplier", "s", &["s_suppkey", "s_nationkey"])?;
    let n = q.scan("nation", "n", &["n_nationkey", "n_name"])?;
    let n = match variant {
        Variant::FewerNations => {
            let pred = n.col("n_nationkey")?.cmp(CmpOp::Lt, Expr::lit(10i64));
            q.filter(n, pred)
        }
        Variant::Normal => n,
    };
    let sn = q.join(s, n, &[("s.s_nationkey", "n.n_nationkey")])?;

    let joined = q.join(plpso, sn, &[("l.l_suppkey", "s.s_suppkey")])?;

    let amount = joined
        .col("l_extendedprice")?
        .mul(Expr::lit(1.0f64).sub(joined.col("l_discount")?))
        .sub(joined.col("ps_supplycost")?.mul(joined.col("l_quantity")?));
    let o_year = joined.col("o_orderdate")?.year();
    let name_col = joined.col("n_name")?;
    let projected = q.project(
        joined,
        &[
            (name_col, "n_name", DataType::Str),
            (o_year, "o_year", DataType::Int),
            (amount, "amount", DataType::Float),
        ],
    )?;
    let amt = projected.col("amount")?;
    let agg = q.aggregate(
        projected,
        &["n_name", "o_year"],
        &[(AggFunc::Sum, amt, "sum_amount")],
    )?;
    QuerySpec::new(agg.into_plan(), q.into_attrs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, TpchConfig};

    #[test]
    fn variants_validate() {
        let c = generate(&TpchConfig::uniform(0.005)).unwrap();
        for v in [Variant::Normal, Variant::FewerNations] {
            let spec = build(&c, v).unwrap();
            spec.plan.validate().unwrap();
            assert_eq!(spec.plan.output_attrs().len(), 3, "{v:?}");
            assert_eq!(spec.plan.bindings().len(), 6, "{v:?}");
        }
    }

    #[test]
    fn produces_nation_year_rows() {
        let c = generate(&TpchConfig::uniform(0.01)).unwrap();
        let spec = build(&c, Variant::Normal).unwrap();
        let phys = spec.lower(&c, sip_core::Strategy::Baseline).unwrap();
        let rows = sip_engine::execute_oracle(&phys).unwrap();
        assert!(!rows.is_empty());
        // ≤ 25 nations × 7 order years.
        assert!(rows.len() <= 25 * 7);
    }
}
