//! The AIP Registry (Fig. 2b): completed AIP sets and interest tracking,
//! keyed by attribute-equivalence class.

use parking_lot::Mutex;
use sip_common::FxHashMap;
use sip_filter::AipSet;
use std::fmt::Write as _;
use std::sync::Arc;

/// Per-class registry state.
#[derive(Clone, Debug, Default)]
pub struct ClassState {
    /// Completed AIP sets for the class, in completion order — the paper's
    /// "vector to hold associated and completed AIP sets" (§IV-A).
    pub completed: Vec<Arc<AipSet>>,
    /// Remaining interested parties. When it reaches zero, producers may
    /// discard working sets.
    pub interest: usize,
    /// Human-readable provenance, parallel to `completed`.
    pub provenance: Vec<String>,
}

/// Thread-safe registry shared by all operators of one query.
#[derive(Debug, Default)]
pub struct AipRegistry {
    classes: Mutex<FxHashMap<u32, ClassState>>,
}

impl AipRegistry {
    /// Fresh registry.
    pub fn new() -> Arc<Self> {
        Arc::new(AipRegistry::default())
    }

    /// Declare `n` interested parties for a class (query initialization).
    pub fn register_interest(&self, class: u32, n: usize) {
        self.classes.lock().entry(class).or_default().interest += n;
    }

    /// An interested party is done consuming (its input finished); returns
    /// the remaining interest.
    pub fn decrement_interest(&self, class: u32) -> usize {
        let mut g = self.classes.lock();
        let st = g.entry(class).or_default();
        st.interest = st.interest.saturating_sub(1);
        st.interest
    }

    /// Remaining interest for a class.
    pub fn interest(&self, class: u32) -> usize {
        self.classes
            .lock()
            .get(&class)
            .map(|c| c.interest)
            .unwrap_or(0)
    }

    /// Publish a completed AIP set. Returns `false` (and drops the set)
    /// when nobody is interested anymore.
    pub fn publish(&self, class: u32, set: Arc<AipSet>, provenance: impl Into<String>) -> bool {
        let mut g = self.classes.lock();
        let st = g.entry(class).or_default();
        if st.interest == 0 {
            return false;
        }
        st.completed.push(set);
        st.provenance.push(provenance.into());
        true
    }

    /// All completed sets for a class.
    pub fn completed(&self, class: u32) -> Vec<Arc<AipSet>> {
        self.classes
            .lock()
            .get(&class)
            .map(|c| c.completed.clone())
            .unwrap_or_default()
    }

    /// Number of completed sets across classes.
    pub fn total_published(&self) -> usize {
        self.classes
            .lock()
            .values()
            .map(|c| c.completed.len())
            .sum()
    }

    /// Render registry contents (the Fig. 2b reproduction).
    pub fn display(&self) -> String {
        let mut out = String::new();
        let g = self.classes.lock();
        let mut classes: Vec<_> = g.iter().collect();
        classes.sort_by_key(|(k, _)| **k);
        let _ = writeln!(out, "AIP registry");
        for (class, st) in classes {
            let _ = writeln!(
                out,
                "  class #{class}: interest={}, {} completed set(s)",
                st.interest,
                st.completed.len()
            );
            for (set, prov) in st.completed.iter().zip(st.provenance.iter()) {
                let _ = writeln!(
                    out,
                    "    {:?} keys={} bytes={}  <- {prov}",
                    set.kind(),
                    set.n_keys(),
                    set.size_bytes()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_filter::AipSetBuilder;

    fn a_set() -> Arc<AipSet> {
        Arc::new(AipSetBuilder::paper_default(16).finish())
    }

    #[test]
    fn interest_gates_publication() {
        let r = AipRegistry::new();
        assert!(!r.publish(1, a_set(), "early"), "no interest yet");
        r.register_interest(1, 2);
        assert!(r.publish(1, a_set(), "src A"));
        assert_eq!(r.completed(1).len(), 1);
        assert_eq!(r.decrement_interest(1), 1);
        assert_eq!(r.decrement_interest(1), 0);
        assert!(!r.publish(1, a_set(), "late"));
        assert_eq!(r.total_published(), 1);
    }

    #[test]
    fn classes_are_independent() {
        let r = AipRegistry::new();
        r.register_interest(1, 1);
        r.register_interest(2, 1);
        r.publish(1, a_set(), "one");
        assert_eq!(r.completed(1).len(), 1);
        assert!(r.completed(2).is_empty());
        assert_eq!(r.interest(2), 1);
        assert_eq!(r.interest(99), 0);
    }

    #[test]
    fn display_lists_sets() {
        let r = AipRegistry::new();
        r.register_interest(7, 3);
        r.publish(7, a_set(), "op4/input0 on ps2.ps_partkey");
        let text = r.display();
        assert!(text.contains("class #7"));
        assert!(text.contains("ps2.ps_partkey"));
    }
}
