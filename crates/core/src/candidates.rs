//! `AIPCANDIDATES` (Fig. 3): precompute, per attribute-equivalence class,
//! who can *produce* an AIP set and who can *use* one.
//!
//! The paper phrases this over the conjunct list `P`; since the
//! implementation targets equality conditions only (§III-C), the class
//! structure of the union-find `EQ` carries the same information: an
//! attribute `A` buffered by a stateful operator is a candidate source
//! exactly when its class has members introduced outside that operator's
//! subtree, and those members' introduction points are the injection sites.

use sip_common::{AttrId, FxHashMap, FxHashSet, OpId};
use sip_engine::{PhysKind, PhysPlan};
use sip_plan::EqClasses;

/// A potential producer of an AIP set: the state a stateful operator holds
/// for one input, keyed by `attr`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AipSource {
    /// The stateful operator buffering the subexpression.
    pub op: OpId,
    /// Which input's state (0/1).
    pub input: usize,
    /// The candidate key attribute.
    pub attr: AttrId,
    /// Position of `attr` in the buffered rows' layout (= the child's
    /// output layout).
    pub pos: usize,
}

/// A potential consumer: an injection site whose output rows can be pruned
/// against an AIP set of the class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AipUser {
    /// The injection site — the lowest operator producing the equated
    /// attribute (usually a scan), so pruning happens as early as possible.
    pub site: OpId,
    /// The equated attribute at the site.
    pub attr: AttrId,
    /// Its position in the site's output layout.
    pub pos: usize,
    /// The first stateful ancestor of the site: the operator whose work
    /// shrinks when the site is filtered (the paper's `n`, Fig. 4 line 5).
    pub consumer: OpId,
}

/// Sources and users for one attribute-equivalence class.
#[derive(Clone, Debug, Default)]
pub struct ClassCandidates {
    /// Candidate producers.
    pub sources: Vec<AipSource>,
    /// Candidate consumers, deduplicated by site.
    pub users: Vec<AipUser>,
}

/// The full candidate index for one query.
#[derive(Clone, Debug)]
pub struct Candidates {
    /// Per-class candidates, keyed by union-find class root.
    pub classes: FxHashMap<u32, ClassCandidates>,
    /// Subtree membership: `subtree[op]` = every op in `op`'s subtree
    /// (inclusive). Used to stop a source filtering its own inputs.
    subtrees: Vec<FxHashSet<u32>>,
}

impl Candidates {
    /// Run `AIPCANDIDATES` over a physical plan with the query's transitive
    /// equality classes.
    pub fn compute(plan: &PhysPlan, eq: &EqClasses) -> Candidates {
        let subtrees = compute_subtrees(plan);
        let mut classes: FxHashMap<u32, ClassCandidates> = FxHashMap::default();

        // Pass 1 (Fig. 3 lines 1-9): sources = children of stateful nodes.
        for node in &plan.nodes {
            if !node.kind.is_stateful() {
                continue;
            }
            for (input, &child) in node.inputs.iter().enumerate() {
                let child_layout = &plan.node(child).layout;
                for (pos, &attr) in child_layout.iter().enumerate() {
                    let class = eq.class(attr);
                    // Candidate only when some class member is introduced
                    // outside this child's subtree.
                    let external =
                        class_has_external_member(plan, eq, attr, &subtrees[child.index()]);
                    if external {
                        classes.entry(class).or_default().sources.push(AipSource {
                            op: node.id,
                            input,
                            attr,
                            pos,
                        });
                    }
                }
            }
        }

        // Pass 2 (Fig. 3 lines 10-16): users = injection sites for each
        // class that has at least one source. Every node carrying an
        // equated attribute is a site — not just the introducing scan —
        // because scans may already have finished (their rows in flight)
        // when a set completes; the paper's semijoins at stateful-operator
        // inputs keep pruning in exactly that situation.
        let class_roots: Vec<u32> = classes.keys().copied().collect();
        for class in class_roots {
            let mut seen_sites: FxHashSet<u32> = FxHashSet::default();
            let mut users = Vec::new();
            for info in plan.attrs.iter() {
                let attr = info.id;
                if eq.class(attr) != class {
                    continue;
                }
                for site in plan.nodes_with_attr(attr) {
                    if !seen_sites.insert(site.0) {
                        continue;
                    }
                    let pos = plan
                        .node(site)
                        .layout
                        .iter()
                        .position(|a| *a == attr)
                        .expect("site carries attr");
                    let Some(consumer) = first_stateful_ancestor(plan, site) else {
                        continue; // nothing downstream shrinks; filtering is pointless
                    };
                    users.push(AipUser {
                        site,
                        attr,
                        pos,
                        consumer,
                    });
                }
            }
            // Deepest-first order, as ESTIMATEBENEFIT walks users "in
            // inverse order of depth" (Fig. 4 line 5).
            users.sort_by_key(|u| std::cmp::Reverse(plan.depth(u.site)));
            let entry = classes.entry(class).or_default();
            entry.users = users;
        }

        // Fig. 3's final step (via §IV-A): drop classes nobody can use.
        classes.retain(|_, c| !c.sources.is_empty() && !c.users.is_empty());
        Candidates { classes, subtrees }
    }

    /// Candidates for the class of `attr`.
    pub fn for_class(&self, eq: &EqClasses, attr: AttrId) -> Option<&ClassCandidates> {
        self.classes.get(&eq.class(attr))
    }

    /// Sources buffered at `(op, input)`.
    pub fn sources_at(&self, op: OpId, input: usize) -> Vec<&AipSource> {
        self.classes
            .values()
            .flat_map(|c| c.sources.iter())
            .filter(|s| s.op == op && s.input == input)
            .collect()
    }

    /// Is `node` inside the subtree rooted at `root`?
    pub fn in_subtree(&self, root: OpId, node: OpId) -> bool {
        self.subtrees[root.index()].contains(&node.0)
    }

    /// The users a given source may filter: same class, not inside the
    /// source's own input subtree.
    pub fn users_for_source<'a>(
        &'a self,
        plan: &PhysPlan,
        eq: &EqClasses,
        source: &AipSource,
    ) -> Vec<&'a AipUser> {
        let child = plan.node(source.op).inputs[source.input];
        let Some(class) = self.classes.get(&eq.class(source.attr)) else {
            return vec![];
        };
        class
            .users
            .iter()
            .filter(|u| !self.in_subtree(child, u.site))
            .collect()
    }
}

fn compute_subtrees(plan: &PhysPlan) -> Vec<FxHashSet<u32>> {
    let mut out: Vec<FxHashSet<u32>> = Vec::with_capacity(plan.nodes.len());
    for node in &plan.nodes {
        let mut set = FxHashSet::default();
        set.insert(node.id.0);
        for &c in &node.inputs {
            let child_set = out[c.index()].clone();
            set.extend(child_set);
        }
        out.push(set);
    }
    out
}

fn class_has_external_member(
    plan: &PhysPlan,
    eq: &EqClasses,
    attr: AttrId,
    subtree: &FxHashSet<u32>,
) -> bool {
    let class = eq.class(attr);
    for info in plan.attrs.iter() {
        if info.id == attr || eq.class(info.id) != class {
            continue;
        }
        if let Some(intro) = plan.introducer(info.id) {
            if !subtree.contains(&intro.0) {
                return true;
            }
        }
    }
    false
}

fn first_stateful_ancestor(plan: &PhysPlan, op: OpId) -> Option<OpId> {
    plan.ancestors(op)
        .into_iter()
        .find(|&a| plan.node(a).kind.is_stateful())
}

/// Convenience: is an operator a scan?
pub fn is_scan(plan: &PhysPlan, op: OpId) -> bool {
    matches!(plan.node(op).kind, PhysKind::Scan { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_data::{generate, Catalog, TpchConfig};
    use sip_engine::lower;
    use sip_expr::{AggFunc, Expr};
    use sip_plan::{PredicateIndex, QueryBuilder};

    fn catalog() -> Catalog {
        generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 13,
            zipf_z: 0.0,
        })
        .unwrap()
    }

    /// Fig. 1 miniature: (part ⋈ partsupp) ⋈ (sum availqty per partkey).
    fn fig1_mini(c: &Catalog) -> (PhysPlan, EqClasses) {
        let mut q = QueryBuilder::new(c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let pred = p.col("p_size").unwrap().eq(Expr::lit(1i64));
        let p = q.filter(p, pred);
        let ps1 = q.scan("partsupp", "ps1", &["ps_partkey"]).unwrap();
        let j1 = q
            .join(p, ps1, &[("p.p_partkey", "ps1.ps_partkey")])
            .unwrap();
        let ps2 = q
            .scan("partsupp", "ps2", &["ps_partkey", "ps_availqty"])
            .unwrap();
        let qty = ps2.col("ps_availqty").unwrap();
        let avail = q
            .aggregate(ps2, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
            .unwrap();
        let j2 = q
            .join(j1, avail, &[("p.p_partkey", "ps2.ps_partkey")])
            .unwrap();
        let logical = j2.into_plan();
        let idx = PredicateIndex::build(&logical);
        let plan = lower(&logical, q.into_attrs(), c).unwrap();
        (plan, idx.eq)
    }

    #[test]
    fn partkey_class_has_sources_and_users() {
        let c = catalog();
        let (plan, eq) = fig1_mini(&c);
        let cands = Candidates::compute(&plan, &eq);
        // The partkey class is the only class with candidates.
        assert_eq!(cands.classes.len(), 1);
        let class = cands.classes.values().next().unwrap();
        // Sources: both sides of j1, both sides of j2, aggregate input.
        assert!(class.sources.len() >= 4, "{:?}", class.sources);
        // Users: the three scans at least (filter above part scan shares
        // the introducer — introducer is the scan itself).
        assert!(class.users.len() >= 3, "{:?}", class.users);
        // Every user site's layout really carries the attr at pos.
        for u in &class.users {
            assert_eq!(plan.node(u.site).layout[u.pos], u.attr);
            assert!(plan.node(u.consumer).kind.is_stateful());
        }
        // Users are deepest-first.
        let depths: Vec<usize> = class.users.iter().map(|u| plan.depth(u.site)).collect();
        let mut sorted = depths.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(depths, sorted);
    }

    #[test]
    fn source_never_filters_its_own_subtree() {
        let c = catalog();
        let (plan, eq) = fig1_mini(&c);
        let cands = Candidates::compute(&plan, &eq);
        let class = cands.classes.values().next().unwrap();
        // The aggregate-input source (ps2 side) must not list the ps2 scan
        // as a user of its own set.
        let agg_source = class
            .sources
            .iter()
            .find(|s| matches!(plan.node(s.op).kind, sip_engine::PhysKind::Aggregate { .. }))
            .expect("aggregate source exists");
        let users = cands.users_for_source(&plan, &eq, agg_source);
        let child = plan.node(agg_source.op).inputs[agg_source.input];
        for u in &users {
            assert!(!cands.in_subtree(child, u.site));
        }
        // But it can filter the part/ps1 side scans.
        assert!(!users.is_empty());
    }

    #[test]
    fn no_candidates_without_cross_subtree_equality() {
        let c = catalog();
        let mut q = QueryBuilder::new(&c);
        let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
        let pred = p.col("p_size").unwrap().eq(Expr::lit(1i64));
        let fp = q.filter(p, pred);
        let logical = fp.into_plan();
        let idx = PredicateIndex::build(&logical);
        let plan = lower(&logical, q.into_attrs(), &c).unwrap();
        let cands = Candidates::compute(&plan, &idx.eq);
        assert!(cands.classes.is_empty());
    }

    #[test]
    fn sources_at_lookup() {
        let c = catalog();
        let (plan, eq) = fig1_mini(&c);
        let cands = Candidates::compute(&plan, &eq);
        let agg = plan
            .nodes
            .iter()
            .find(|n| matches!(n.kind, sip_engine::PhysKind::Aggregate { .. }))
            .unwrap();
        let at = cands.sources_at(agg.id, 0);
        assert_eq!(at.len(), 1);
        assert_eq!(at[0].pos, 0); // ps_partkey is the first scanned column
    }
}
