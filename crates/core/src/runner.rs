//! Uniform query execution under the paper's four strategies.

use crate::config::AipConfig;
use crate::costbased::CostBased;
use crate::feedforward::FeedForward;
use sip_common::Result;
use sip_data::Catalog;
use sip_engine::{
    execute_with_recovery, lower, ExecMonitor, ExecOptions, NoopMonitor, PartitionMap, PhysPlan,
    QueryOutput,
};
use sip_optimizer::{magic_rewrite, CostModel};
use sip_parallel::PartitionedExec;
use sip_plan::{AttrCatalog, LogicalPlan, PredicateIndex};
use std::fmt;
use std::sync::Arc;

/// The execution strategies compared throughout §VI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Push execution with no information passing.
    Baseline,
    /// The pipelined magic-sets rewriting baseline (ref. \[18\], §VI).
    Magic,
    /// Greedy feed-forward filtering (§IV-A).
    FeedForward,
    /// Cost-based AIP (§IV-B).
    CostBased,
}

impl Strategy {
    /// All four, in the paper's presentation order.
    pub const ALL: [Strategy; 4] = [
        Strategy::Baseline,
        Strategy::Magic,
        Strategy::FeedForward,
        Strategy::CostBased,
    ];

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Baseline => "Baseline",
            Strategy::Magic => "Magic",
            Strategy::FeedForward => "Feed-forward",
            Strategy::CostBased => "Cost-based",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A logical query ready to run: plan + attribute catalog.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// The (decorrelated) logical plan.
    pub plan: LogicalPlan,
    /// Its attribute catalog.
    pub attrs: AttrCatalog,
}

impl QuerySpec {
    /// Build and validate.
    pub fn new(plan: LogicalPlan, attrs: AttrCatalog) -> Result<Self> {
        plan.validate()?;
        Ok(QuerySpec { plan, attrs })
    }

    /// Lower to a physical plan under a strategy (Magic rewrites first).
    pub fn lower(&self, catalog: &Catalog, strategy: Strategy) -> Result<PhysPlan> {
        match strategy {
            Strategy::Magic => {
                let rw = magic_rewrite(&self.plan);
                lower(&rw.plan, self.attrs.clone(), catalog)
            }
            _ => lower(&self.plan, self.attrs.clone(), catalog),
        }
    }
}

/// Execute a query under a strategy. `aip` configures both AIP algorithms;
/// it is ignored for Baseline and Magic.
pub fn run_query(
    spec: &QuerySpec,
    catalog: &Catalog,
    strategy: Strategy,
    options: ExecOptions,
    aip: &AipConfig,
) -> Result<QueryOutput> {
    let phys = Arc::new(spec.lower(catalog, strategy)?);
    let monitor: Arc<dyn ExecMonitor> = match strategy {
        Strategy::Baseline | Strategy::Magic => Arc::new(NoopMonitor),
        Strategy::FeedForward => {
            let eq = PredicateIndex::build(&spec.plan).eq;
            FeedForward::new(eq, aip.clone())
        }
        Strategy::CostBased => {
            let eq = PredicateIndex::build(&spec.plan).eq;
            CostBased::new(eq, aip.clone(), CostModel::default())
        }
    };
    // Serial runs share the recovery path: with no retry policy in the
    // options this is exactly the old fail-fast `execute`.
    execute_with_recovery(phys, monitor, options)
}

/// Execute a query under a strategy with `dop`-way hash-partition
/// parallelism (`sip-parallel`).
///
/// Drop-in sibling of [`run_query`]: plans with no safe parallel region —
/// and any run with `dop <= 1` — execute serially. Also returns the
/// [`PartitionMap`] when the partitioned path ran, for per-partition
/// metrics rollups ([`sip_engine::ExecMetrics::per_partition`]).
pub fn run_query_dop(
    spec: &QuerySpec,
    catalog: &Catalog,
    strategy: Strategy,
    options: ExecOptions,
    aip: &AipConfig,
    dop: u32,
) -> Result<(QueryOutput, Option<Arc<PartitionMap>>)> {
    if dop <= 1 {
        return Ok((run_query(spec, catalog, strategy, options, aip)?, None));
    }
    let phys = Arc::new(spec.lower(catalog, strategy)?);
    let monitor: Arc<dyn ExecMonitor> = match strategy {
        Strategy::Baseline | Strategy::Magic => Arc::new(NoopMonitor),
        Strategy::FeedForward => {
            let eq = PredicateIndex::build(&spec.plan).eq;
            FeedForward::new(eq, aip.clone())
        }
        Strategy::CostBased => {
            let eq = PredicateIndex::build(&spec.plan).eq;
            CostBased::new(eq, aip.clone(), CostModel::default())
        }
    };
    PartitionedExec::new(dop).execute(phys, monitor, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Baseline.name(), "Baseline");
        assert_eq!(Strategy::ALL.len(), 4);
        assert_eq!(Strategy::CostBased.to_string(), "Cost-based");
    }
}
