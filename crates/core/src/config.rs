//! AIP configuration knobs.

use sip_filter::AipSetKind;

/// Configuration shared by both AIP algorithms.
#[derive(Clone, Debug)]
pub struct AipConfig {
    /// Summary representation for constructed AIP sets. The paper's
    /// implementation "only employs Bloom filters" (§V) after finding hash
    /// sets' precision not worth their cost; both are available here for
    /// the ablation benches.
    pub set_kind: AipSetKind,
    /// Bloom false-positive rate target (paper: 5%).
    pub fpr: f64,
    /// Bloom hash-function count (paper: 1).
    pub n_hashes: u32,
    /// Lower bound on the expected-keys figure used to size Bloom filters,
    /// so wildly wrong underestimates cannot create useless tiny filters.
    pub min_expected_keys: usize,
    /// Cost-based only: when a completed join-side hash table is keyed by
    /// exactly the candidate attribute, reuse its keys as an exact hash AIP
    /// set instead of building a Bloom filter (§V-B).
    pub reuse_hash_tables: bool,
    /// Cost-based only: additional cost per byte of AIP set, paid before a
    /// set is judged beneficial. Zero locally; the distributed manager sets
    /// it from link bandwidth (§V-B "the cost of transmitting an AIP filter
    /// across the network").
    pub ship_cost_per_byte: f64,
}

impl Default for AipConfig {
    fn default() -> Self {
        AipConfig {
            set_kind: AipSetKind::Bloom,
            fpr: 0.05,
            n_hashes: 1,
            min_expected_keys: 1024,
            reuse_hash_tables: true,
            ship_cost_per_byte: 0.0,
        }
    }
}

impl AipConfig {
    /// The paper's default configuration.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Exact hash AIP sets (the §V preliminary-experiment ablation).
    pub fn hash_sets() -> Self {
        AipConfig {
            set_kind: AipSetKind::Hash,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = AipConfig::paper();
        assert_eq!(c.set_kind, AipSetKind::Bloom);
        assert!((c.fpr - 0.05).abs() < 1e-12);
        assert_eq!(c.n_hashes, 1);
        assert_eq!(c.ship_cost_per_byte, 0.0);
    }

    #[test]
    fn hash_ablation_config() {
        assert_eq!(AipConfig::hash_sets().set_kind, AipSetKind::Hash);
    }
}
