//! Cost-Based AIP (§IV-B): the AIP Manager and `ESTIMATEBENEFIT` (Fig. 4).
//!
//! Execution proceeds normally until an input subexpression of a stateful
//! operator completes. The manager then re-derives cardinality estimates
//! from live counters (`UPDATEESTIMATES`), prices the construction of an
//! AIP set over the completed state, walks the interested operators
//! deepest-first summing `COST(n ⋈ n′) − COST((n < A) ⋈ n′)` while marking
//! ancestors to avoid double counting, and only on positive net benefit
//! scans the state, builds the set, and injects it.

use crate::candidates::{AipSource, AipUser, Candidates};
use crate::config::AipConfig;
use crate::registry::AipRegistry;
use parking_lot::Mutex;
use sip_common::trace::{FilterEvent, FilterEventKind};
use sip_common::{FxHashMap, FxHashSet, OpId};
use sip_engine::{
    CompletionEvent, ExecContext, ExecMonitor, InjectedFilter, MergePolicy, PhysKind,
    StageFeedback, StateView,
};
use sip_filter::{AipSet, AipSetBuilder, AipSetKind};
use sip_optimizer::{CostModel, Estimator, RuntimeActual};
use sip_plan::EqClasses;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Decision counters for reporting and the overhead experiments.
#[derive(Debug, Default)]
pub struct CbStats {
    /// Candidate sets evaluated.
    pub considered: AtomicU64,
    /// Sets judged beneficial and built.
    pub built: AtomicU64,
    /// Sets rejected by the cost model.
    pub rejected: AtomicU64,
}

/// Per-partition AIP sets keyed by the *source plan* identity of their
/// producer: (logical op, input, attr) — the same union tracker the
/// feed-forward controller uses, ported here so the cost-based manager's
/// scoped per-partition filters OR-merge into one plan-wide filter once
/// every partition of a producer has built (and accepted) its set.
type PartialSets = FxHashMap<(u32, usize, u32), Vec<Arc<AipSet>>>;

/// The cost-based AIP manager. Install as the engine monitor.
pub struct CostBased {
    config: AipConfig,
    cost: CostModel,
    eq: EqClasses,
    registry: Arc<AipRegistry>,
    candidates: Mutex<Option<Arc<Candidates>>>,
    /// Per-partition sets awaiting their cross-partition OR-merge. A
    /// producer whose set was rejected by the cost model in *any*
    /// partition never completes its union — the scoped partials that
    /// were judged beneficial keep working on their own.
    partial_sets: Mutex<PartialSets>,
    /// Decision log for explainability (one line per considered set).
    decisions: Mutex<Vec<String>>,
    /// Observed row counts snapshotted at stage boundaries, keyed by raw
    /// operator index. `UPDATEESTIMATES` folds these into every later
    /// benefit estimate, so a downstream decision sees what the finished
    /// stage actually produced even if the producing operator's own live
    /// counter has since been left behind (e.g. its thread exited).
    stage_actuals: Mutex<FxHashMap<u32, RuntimeActual>>,
    /// Counters.
    pub stats: CbStats,
}

impl CostBased {
    /// Build a manager for a query with equality classes `eq`.
    pub fn new(eq: EqClasses, config: AipConfig, cost: CostModel) -> Arc<Self> {
        Arc::new(CostBased {
            config,
            cost,
            eq,
            registry: AipRegistry::new(),
            candidates: Mutex::new(None),
            partial_sets: Mutex::new(FxHashMap::default()),
            decisions: Mutex::new(Vec::new()),
            stage_actuals: Mutex::new(FxHashMap::default()),
            stats: CbStats::default(),
        })
    }

    /// The registry (inspection / Fig. 2 reproduction).
    pub fn registry(&self) -> Arc<AipRegistry> {
        Arc::clone(&self.registry)
    }

    /// The decision log.
    pub fn decisions(&self) -> Vec<String> {
        self.decisions.lock().clone()
    }

    fn gather_actuals(&self, ctx: &ExecContext) -> Vec<RuntimeActual> {
        let stage = self.stage_actuals.lock();
        ctx.hub
            .ops
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut a = RuntimeActual {
                    rows_out: m.rows_out.load(Ordering::Relaxed),
                    finished: m.finished.load(Ordering::Relaxed),
                };
                // Stage-boundary snapshots only ever add information: a
                // snapshot is a point-in-time floor on rows_out, and a
                // finished bit recorded there stays true.
                if let Some(s) = stage.get(&(i as u32)) {
                    a.rows_out = a.rows_out.max(s.rows_out);
                    a.finished |= s.finished;
                }
                a
            })
            .collect()
    }

    /// `ESTIMATEBENEFIT` (Fig. 4) for one candidate source. Returns the
    /// accepted injection sites (empty = not beneficial). `view_pos` is the
    /// position of the source attribute in `view.layout()` — which differs
    /// from `source.pos` (a *child-layout* position) for operators whose
    /// buffered state is not the raw input (aggregate group keys, semijoin
    /// build keys).
    #[allow(clippy::too_many_arguments)]
    fn estimate_benefit(
        &self,
        ctx: &ExecContext,
        cands: &Candidates,
        source: &AipSource,
        view: &dyn StateView,
        view_pos: usize,
        est: &Estimator,
    ) -> (f64, f64, Vec<AipUser>) {
        let plan = &ctx.plan;
        let state_rows = view.len() as f64;
        // createCost (line 2) — plus shipping for remote injection sites.
        let create_cost = self.cost.aip_create_cost(state_rows);
        let child = plan.node(source.op).inputs[source.input];
        // Distinct keys in the AIP set: exact when the operator's hash
        // structure already counts them (§IV-B's "operators that maintain
        // information about the cardinality of the results computed so
        // far"), otherwise the estimator's scaled figure.
        let d_keys = view
            .distinct_hint(view_pos)
            .map(|d| d as f64)
            .unwrap_or_else(|| est.node(child).distinct(source.attr).min(state_rows))
            .max(1.0);

        let mut savings = 0.0;
        let mut used: FxHashSet<u32> = FxHashSet::default();
        let mut accepted: Vec<AipUser> = Vec::new();
        // Mutable cardinalities for propagation (line 10).
        let mut rows: Vec<f64> = plan.nodes.iter().map(|n| est.node(n.id).rows).collect();

        for user in cands.users_for_source(plan, &self.eq, source) {
            if ctx.hub.op(user.site).finished.load(Ordering::Relaxed) {
                continue; // nothing left to filter
            }
            // Partial-aggregate value columns are not filterable: their
            // values are not final until the merge aggregate runs.
            if ctx
                .partitions
                .as_ref()
                .is_some_and(|m| !m.filterable_at(user.site, user.pos))
            {
                continue;
            }
            let n = user.consumer;
            let site_rows = rows[user.site.index()];
            let d_site = est.node(user.site).distinct(user.attr).max(1.0);
            let sel = (d_keys / d_site).min(1.0);
            // Bloom false positives leak through (§III-B's θ-probe).
            let sel_eff = if self.config.set_kind == AipSetKind::Bloom {
                sel + self.config.fpr * (1.0 - sel)
            } else {
                sel
            };
            let use_benefit = match &plan.node(n).kind {
                PhysKind::HashJoin {
                    left_keys,
                    right_keys,
                    ..
                } => {
                    // Which input of n does the site feed?
                    let inputs = &plan.node(n).inputs;
                    let (fed, other) = if cands.in_subtree(inputs[0], user.site) {
                        (0usize, 1usize)
                    } else {
                        (1usize, 0usize)
                    };
                    let fed_rows = rows[inputs[fed].index()];
                    let other_rows = rows[inputs[other].index()];
                    let out_rows = rows[n.index()];
                    // Does the filter cut join output too? Only when the
                    // filtered attribute is (equated to) n's join key.
                    let fed_keys = if fed == 0 { left_keys } else { right_keys };
                    let fed_layout = &plan.node(inputs[fed]).layout;
                    let key_filter = fed_keys
                        .iter()
                        .any(|&k| self.eq.class(fed_layout[k]) == self.eq.class(user.attr));
                    let out_scale = if key_filter { sel_eff } else { 1.0 };
                    let before = self.cost.join_cost(fed_rows, other_rows, out_rows);
                    let after =
                        self.cost
                            .join_cost(fed_rows * sel_eff, other_rows, out_rows * out_scale)
                            + self.cost.aip_filter_cost(site_rows);
                    before - after
                }
                PhysKind::Aggregate { .. } | PhysKind::Distinct | PhysKind::SemiJoin { .. } => {
                    let in_rows = rows[plan.node(n).inputs[0].index()];
                    let before = self.cost.agg_cost(in_rows);
                    let after = self.cost.agg_cost(in_rows * sel_eff)
                        + self.cost.aip_filter_cost(site_rows);
                    before - after
                }
                _ => 0.0,
            };
            if use_benefit > 0.0 && !used.contains(&n.0) {
                savings += use_benefit;
                // Line 10: propagate revised cardinalities upward.
                rows[user.site.index()] *= sel_eff;
                for a in plan.ancestors(user.site) {
                    rows[a.index()] *= sel_eff;
                }
                accepted.push(user.clone());
            }
            if use_benefit > 0.0 {
                // Lines 12-15: mark n's ancestors up to the common ancestor
                // with the source so they are not double counted.
                for a in ancestors_to_common(plan, n, source.op) {
                    used.insert(a.0);
                }
                used.insert(n.0);
            }
        }
        (savings, create_cost, accepted)
    }
}

/// Ancestors of `n` (exclusive) up to, but not including, the lowest common
/// ancestor of `n` and `s`.
fn ancestors_to_common(plan: &sip_engine::PhysPlan, n: OpId, s: OpId) -> Vec<OpId> {
    let s_anc: FxHashSet<u32> = plan
        .ancestors(s)
        .into_iter()
        .map(|o| o.0)
        .chain(std::iter::once(s.0))
        .collect();
    let mut out = Vec::new();
    for a in plan.ancestors(n) {
        if s_anc.contains(&a.0) {
            break;
        }
        out.push(a);
    }
    out
}

impl ExecMonitor for CostBased {
    fn on_query_start(&self, ctx: &Arc<ExecContext>) {
        let cands = Arc::new(Candidates::compute(&ctx.plan, &self.eq));
        for (class, cc) in &cands.classes {
            self.registry.register_interest(*class, cc.users.len());
        }
        *self.candidates.lock() = Some(cands);
        // One manager may serve several executions of one query (the
        // adaptive executor runs stage 1 and the re-planned stage 2 as
        // separate plans over the same attribute catalog). State keyed by
        // operator index is per-plan and must not leak across runs; the
        // decision log deliberately persists — it is the cross-stage
        // story the report prints.
        self.partial_sets.lock().clear();
        self.stage_actuals.lock().clear();
    }

    fn on_stage_boundary(&self, _ctx: &Arc<ExecContext>, fb: &StageFeedback) {
        // UPDATEESTIMATES with *measured* cardinalities: every operator's
        // live rows_out at the moment a shuffle stage finished becomes a
        // floor for later estimates, and operators the boundary saw as
        // finished stay pinned to their actuals. Downstream
        // `estimate_benefit` calls (for joins that have not started
        // probing yet) then price AIP sets against observed reality
        // instead of plan-time guesses.
        {
            let mut stage = self.stage_actuals.lock();
            for &(op, rows_out, finished) in &fb.op_rows {
                let e = stage.entry(op.0).or_insert(RuntimeActual {
                    rows_out: 0,
                    finished: false,
                });
                e.rows_out = e.rows_out.max(rows_out);
                e.finished |= finished;
            }
        }
        self.decisions.lock().push(format!(
            "stage mesh {}: {} writers done, {} rows routed (balance {:.2}, hot_share {:.2}, {} hot keys); estimates updated for {} ops",
            fb.mesh,
            fb.writers,
            fb.rows_total(),
            fb.balance(),
            fb.hot_share(),
            fb.hot_keys,
            fb.op_rows.len()
        ));
    }

    fn on_input_complete(&self, ctx: &Arc<ExecContext>, ev: &CompletionEvent<'_>) {
        if !ev.view.complete() {
            return; // short-circuited state is partial: unusable (§III-B)
        }
        let Some(cands) = self.candidates.lock().clone() else {
            return;
        };
        // In a partition-parallel plan, a completed input covers only its
        // partition's hash class. Sets over the *input stream's*
        // partitioning class — which a shuffle changes mid-plan, so the
        // check is per-operator ([`PartitionMap::in_class_at`]), not
        // plan-wide — are priced (with the per-partition cardinalities the
        // estimator already derives from the expanded plan) and injected
        // under a partition scope; sets over other attributes would be
        // partial without a usable scope, so they are skipped — the
        // feed-forward controller handles those via OR-merge.
        let partition = ctx
            .partitions
            .as_ref()
            .and_then(|m| m.partition(ev.op).map(|p| (Arc::clone(m), p)));
        let state_stream = ctx.plan.node(ev.op).inputs[ev.input];
        let sources: Vec<AipSource> = cands
            .sources_at(ev.op, ev.input)
            .into_iter()
            .filter(|s| match &partition {
                Some((map, _)) => map.in_class_at(state_stream, s.attr),
                None => true,
            })
            .cloned()
            .collect();
        if sources.is_empty() {
            return;
        }
        // UPDATEESTIMATES (line 1).
        let actuals = self.gather_actuals(ctx);
        let est = Estimator::estimate_with_actuals(&ctx.plan, &actuals);

        for source in sources {
            // The buffered state's rows follow the *view's* layout, which
            // for aggregates/semijoins is the key layout, not the child
            // layout `source.pos` indexes. State that does not materialize
            // the attribute (e.g. a global aggregate) cannot source a set.
            let Some(view_pos) = ev.view.layout().iter().position(|a| *a == source.attr) else {
                continue;
            };
            self.stats.considered.fetch_add(1, Ordering::Relaxed);
            let (savings, mut create_cost, accepted) =
                self.estimate_benefit(ctx, &cands, &source, ev.view, view_pos, &est);
            // Distributed extension: add the shipping term for the set.
            if self.config.ship_cost_per_byte > 0.0 {
                let approx_bytes = estimate_set_bytes(&self.config, ev.view.len());
                create_cost += self.config.ship_cost_per_byte * approx_bytes;
            }
            let attr_name = ctx.plan.attrs.name(source.attr);
            if savings <= create_cost || accepted.is_empty() {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                self.decisions.lock().push(format!(
                    "reject {attr_name} from {}/in{}: savings {savings:.0} <= cost {create_cost:.0}",
                    source.op, source.input
                ));
                continue;
            }
            // Build the set by scanning the operator state — the real cost
            // the model just priced. The scan inserts positionally
            // ([`AipSetBuilder::insert_at`]): no key vector is built per
            // visited row, and exact sets clone a key value only when
            // storing a genuinely new key. (A chunked gather + shared
            // digest pass was measured slower here: `for_each` yields
            // borrowed rows, and the per-row `Arc` clone a gather needs
            // costs more than the hash it would save.)
            let kind = self.pick_kind(ctx, &source);
            let mut builder = AipSetBuilder::new(
                kind,
                ev.view.len().max(self.config.min_expected_keys),
                self.config.fpr,
                self.config.n_hashes,
            );
            let positions = [view_pos];
            let t_build = std::time::Instant::now();
            ev.view.for_each(&mut |row| {
                builder.insert_at(row.key_hash(&positions), row.values(), &positions);
            });
            let set = Arc::new(builder.finish());
            let build_nanos = t_build.elapsed().as_nanos() as u64;
            self.stats.built.fetch_add(1, Ordering::Relaxed);
            ctx.hub.trace.filter_event(FilterEvent {
                kind: FilterEventKind::Built,
                site: source.op.0,
                label: format!("cb[{attr_name}] from {}/in{}", source.op, source.input),
                t_nanos: ctx.hub.trace.now(),
                build_nanos,
                keys: set.n_keys(),
                bytes: set.size_bytes() as u64,
            });
            self.decisions.lock().push(format!(
                "build {attr_name} ({kind:?}, {} keys) from {}/in{}: savings {savings:.0} > cost {create_cost:.0}; inject at {:?}",
                set.n_keys(),
                source.op,
                source.input,
                accepted.iter().map(|u| u.site).collect::<Vec<_>>()
            ));
            self.registry.publish(
                self.eq.class(source.attr),
                Arc::clone(&set),
                format!("{}/input{} on {attr_name}", source.op, source.input),
            );
            let scope = partition.as_ref().map(|(map, p)| sip_engine::FilterScope {
                partition: *p,
                dop: map.dop,
            });
            if let Some((map, p)) = &partition {
                ctx.hub.trace.filter_event(FilterEvent {
                    kind: FilterEventKind::Scoped,
                    site: source.op.0,
                    label: format!("cb[{attr_name}] part{p}/{}", map.dop),
                    t_nanos: ctx.hub.trace.now(),
                    build_nanos: 0,
                    keys: set.n_keys(),
                    bytes: set.size_bytes() as u64,
                });
            }
            // Salted digests of the producing stream pass scoped filters
            // unprobed — partition p's state does not cover a key whose
            // rows were scattered or replicated outside the hash
            // invariant; the OR-merged union below covers them.
            let salted = partition
                .as_ref()
                .and_then(|(map, _)| map.salted_at(state_stream));
            for u in &accepted {
                if let Some((map, p)) = &partition {
                    // A site whose stream is partitioned on the probed
                    // attribute and owned by another partition never sees
                    // an in-scope row; skip it. Sites partitioned on a
                    // different class (across a shuffle) mix hash classes
                    // and keep the filter — the scope check routes per row.
                    if matches!(map.partition(u.site), Some(q) if q != *p)
                        && map.in_class_at(u.site, u.attr)
                    {
                        continue;
                    }
                }
                let filter = InjectedFilter::scoped_salted(
                    format!("cb[{attr_name}] @{}", u.site),
                    vec![u.pos],
                    Arc::clone(&set),
                    scope,
                    salted.clone(),
                );
                ctx.inject_filter(u.site, filter, MergePolicy::Intersect);
            }
            // Cross-partition OR-merge: park the partial under its source-
            // plan identity; once all `dop` partitions of the same logical
            // producer have built (and accepted) their sets, the union
            // covers the whole subexpression and is injected plan-wide,
            // unscoped. Geometry mismatches (differently sized Blooms)
            // abandon the merge — the scoped partials keep working.
            if let Some((map, _)) = &partition {
                let union_key = (map.logical(ev.op).0, ev.input, source.attr.0);
                let complete = {
                    let mut pending = self.partial_sets.lock();
                    let slot = pending.entry(union_key).or_default();
                    slot.push(Arc::clone(&set));
                    (slot.len() as u32 == map.dop).then(|| std::mem::take(slot))
                };
                if let Some(partials) = complete {
                    let mut merged = (*partials[0]).clone();
                    if partials[1..].iter().all(|s| merged.union(s).is_ok()) {
                        let merged = Arc::new(merged);
                        ctx.hub.trace.filter_event(FilterEvent {
                            kind: FilterEventKind::OrMerged,
                            site: map.logical(ev.op).0,
                            label: format!("cb[{attr_name}] union of {}", map.dop),
                            t_nanos: ctx.hub.trace.now(),
                            build_nanos: 0,
                            keys: merged.n_keys(),
                            bytes: merged.size_bytes() as u64,
                        });
                        self.registry.publish(
                            self.eq.class(source.attr),
                            Arc::clone(&merged),
                            format!(
                                "{}/input{} on {attr_name} [union of {} parts]",
                                map.logical(ev.op),
                                ev.input,
                                map.dop
                            ),
                        );
                        self.decisions.lock().push(format!(
                            "union {attr_name}: OR-merged {} partition sets ({} keys) plan-wide",
                            map.dop,
                            merged.n_keys()
                        ));
                        let live = |site: OpId| !ctx.hub.op(site).finished.load(Ordering::Relaxed);
                        for u in cands.users_for_source(&ctx.plan, &self.eq, &source) {
                            if !live(u.site) || !map.filterable_at(u.site, u.pos) {
                                continue;
                            }
                            // Intersect, not Replace: the subsumed scoped
                            // partials stay in the chain — correct, cheap
                            // (scope check first), bounded by dop.
                            let filter = InjectedFilter::new(
                                format!("cb[{attr_name}] @{} union", u.site),
                                vec![u.pos],
                                Arc::clone(&merged),
                            );
                            ctx.inject_filter(u.site, filter, MergePolicy::Intersect);
                        }
                    }
                }
            }
        }
    }
}

impl CostBased {
    /// §V-B: "in some cases a hash table from an operator (e.g., a join)
    /// may be directly reused as an AIP set, if it has an appropriate key"
    /// — when the completed join side is keyed by exactly the candidate
    /// attribute, an exact hash set costs nothing extra in false positives.
    fn pick_kind(&self, ctx: &ExecContext, source: &AipSource) -> AipSetKind {
        if !self.config.reuse_hash_tables {
            return self.config.set_kind;
        }
        match &ctx.plan.node(source.op).kind {
            PhysKind::HashJoin {
                left_keys,
                right_keys,
                ..
            } => {
                let keys = if source.input == 0 {
                    left_keys
                } else {
                    right_keys
                };
                if keys.as_slice() == [source.pos] {
                    AipSetKind::Hash
                } else {
                    self.config.set_kind
                }
            }
            _ => self.config.set_kind,
        }
    }
}

/// Approximate serialized size of a prospective AIP set, used to price
/// shipping before the set exists.
fn estimate_set_bytes(config: &AipConfig, n_keys: usize) -> f64 {
    match config.set_kind {
        AipSetKind::Bloom => {
            // m = -k·n / ln(1 - fpr^(1/k)) bits.
            let k = config.n_hashes.max(1) as f64;
            let per_hash = config.fpr.powf(1.0 / k);
            let bits = -k * (n_keys.max(1) as f64) / (1.0 - per_hash).ln();
            bits / 8.0
        }
        AipSetKind::Hash => n_keys as f64 * 24.0,
        AipSetKind::MinMax => 64.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_byte_estimate_tracks_kind() {
        let bloom = estimate_set_bytes(&AipConfig::paper(), 10_000);
        // ~19.5 bits/key ≈ 2.4 bytes/key.
        assert!((20_000.0..30_000.0).contains(&bloom), "{bloom}");
        let hash = estimate_set_bytes(&AipConfig::hash_sets(), 10_000);
        assert!(hash > bloom * 5.0);
    }
}
