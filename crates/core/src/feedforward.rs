//! Greedy Feed-Forward Filtering (§IV-A).
//!
//! "Our first algorithm, which requires minimal runtime decision-making and
//! no runtime statistics collection, optimistically creates and uses every
//! potentially useful AIP set."
//!
//! Each stateful-operator input with AIP candidates gets a *working copy*
//! AIP set, built incrementally as tuples are admitted. When the input
//! completes, the working set is published to the registry and injected as
//! a semijoin filter at every interested site outside the producing
//! subtree; same-geometry Bloom filters over the same site are merged by
//! bitwise intersection. Sets whose prospective users have all finished are
//! discarded instead of published.

use crate::candidates::{AipSource, Candidates};
use crate::config::AipConfig;
use crate::registry::AipRegistry;
use parking_lot::Mutex;
use sip_common::trace::{FilterEvent, FilterEventKind};
use sip_common::{DigestBuffer, FxHashMap, OpId, Row};
use sip_engine::{
    CompletionEvent, ExecContext, ExecMonitor, FilterScope, InjectedFilter, MergePolicy,
    PartitionMap, RowCollector,
};
use sip_filter::{AipSet, AipSetBuilder};
use sip_optimizer::Estimator;
use sip_plan::EqClasses;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Per-partition AIP sets keyed by the *source plan* identity of their
/// producer: (logical op, input, attr).
type PartialSets = FxHashMap<(u32, usize, u32), Vec<Arc<AipSet>>>;

/// Shared, read-mostly state for the feed-forward controller.
struct Shared {
    config: AipConfig,
    eq: EqClasses,
    registry: Arc<AipRegistry>,
    candidates: Mutex<Option<Arc<Candidates>>>,
    /// Per-partition sets awaiting their OR-merge. When all `dop`
    /// partitions of one producer have completed, the union covers the
    /// whole logical subexpression and is injected plan-wide.
    partial_sets: Mutex<PartialSets>,
}

/// The feed-forward AIP controller. Install as the engine monitor.
pub struct FeedForward {
    shared: Arc<Shared>,
}

impl FeedForward {
    /// Build a controller for a query with equality classes `eq`.
    pub fn new(eq: EqClasses, config: AipConfig) -> Arc<Self> {
        Arc::new(FeedForward {
            shared: Arc::new(Shared {
                config,
                eq,
                registry: AipRegistry::new(),
                candidates: Mutex::new(None),
                partial_sets: Mutex::new(FxHashMap::default()),
            }),
        })
    }

    /// The registry (for inspection / the Fig. 2 reproduction).
    pub fn registry(&self) -> Arc<AipRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// The computed candidate index (available after query start).
    pub fn candidates(&self) -> Option<Arc<Candidates>> {
        self.shared.candidates.lock().clone()
    }
}

/// One incrementally-built working set.
struct WorkingEntry {
    source: AipSource,
    class: u32,
    builder: AipSetBuilder,
}

/// Per-(op, input) collector feeding all working sets for that input.
struct FfCollector {
    shared: Arc<Shared>,
    entries: Vec<WorkingEntry>,
    /// Reusable digest scratch for batch admits whose source column is not
    /// the host operator's own key column (one hash pass per batch per
    /// such entry; the common case reuses the operator's pass instead).
    scratch: DigestBuffer,
}

impl RowCollector for FfCollector {
    fn admit(&mut self, row: &Row) {
        for e in &mut self.entries {
            let digest = row.key_hash(&[e.source.pos]);
            let key = [row.get(e.source.pos).clone()];
            e.builder.insert(digest, &key);
        }
    }

    /// The batch working-copy build (§IV-A at batch granularity): when the
    /// entry's source column *is* the operator's key column — the common
    /// AIP shape, e.g. an aggregate's group key feeding a partkey filter —
    /// the operator's own digest pass is consumed as-is, so admitting a
    /// batch re-hashes nothing; otherwise one digest pass per entry per
    /// batch replaces a hash + `Value` clone per row.
    fn admit_batch(&mut self, rows: &[Row], key_positions: &[usize], digests: &DigestBuffer) {
        let FfCollector {
            entries, scratch, ..
        } = self;
        for e in entries {
            let pos = [e.source.pos];
            if key_positions == pos {
                e.builder.extend_batch(rows, &pos, digests);
            } else {
                scratch.compute(rows, &pos);
                e.builder.extend_batch(rows, &pos, scratch);
            }
        }
    }

    fn finish(&mut self, ctx: &Arc<ExecContext>) {
        let Some(cands) = self.shared.candidates.lock().clone() else {
            return;
        };
        for e in self.entries.drain(..) {
            publish_and_inject(&self.shared, &cands, ctx, e);
        }
    }
}

fn publish_and_inject(
    shared: &Shared,
    cands: &Candidates,
    ctx: &Arc<ExecContext>,
    entry: WorkingEntry,
) {
    let partition = ctx
        .partitions
        .as_ref()
        .and_then(|m| m.partition(entry.source.op).map(|p| (Arc::clone(m), p)));
    match partition {
        None => publish_and_inject_serial(shared, cands, ctx, entry),
        Some((map, p)) => publish_and_inject_partitioned(shared, cands, ctx, entry, &map, p),
    }
}

fn publish_and_inject_serial(
    shared: &Shared,
    cands: &Candidates,
    ctx: &Arc<ExecContext>,
    entry: WorkingEntry,
) {
    let plan = &ctx.plan;
    let users = cands.users_for_source(plan, &shared.eq, &entry.source);
    // "all other operators check if there is still interest in the AIP sets
    // they are computing; if not, they discard their local AIP sets."
    // Partial-aggregate value columns are never filterable: their values
    // are not final until the merge aggregate runs.
    let live_users: Vec<_> = users
        .iter()
        .filter(|u| !ctx.hub.op(u.site).finished.load(Ordering::Relaxed))
        .filter(|u| {
            ctx.partitions
                .as_ref()
                .is_none_or(|m| m.filterable_at(u.site, u.pos))
        })
        .collect();
    if live_users.is_empty() {
        return; // discard the working set
    }
    let t_build = std::time::Instant::now();
    let set = Arc::new(entry.builder.finish());
    let build_nanos = t_build.elapsed().as_nanos() as u64;
    let attr_name = plan.attrs.name(entry.source.attr);
    let prov = format!(
        "{}/input{} on {attr_name}",
        entry.source.op, entry.source.input
    );
    ctx.hub.trace.filter_event(FilterEvent {
        kind: FilterEventKind::Built,
        site: entry.source.op.0,
        label: prov.clone(),
        t_nanos: ctx.hub.trace.now(),
        build_nanos,
        keys: set.n_keys(),
        bytes: set.size_bytes() as u64,
    });
    shared
        .registry
        .publish(entry.class, Arc::clone(&set), prov.clone());
    for u in live_users {
        let filter = InjectedFilter::new(
            format!("ff[{}] @{}", attr_name, u.site),
            vec![u.pos],
            Arc::clone(&set),
        );
        ctx.inject_filter(u.site, filter, MergePolicy::Intersect);
    }
}

/// Partition-aware publication: a set built from partition `p`'s state
/// covers only `p`'s hash class of the logical subexpression.
///
/// * When the source attribute is in the *producing stream's* partitioning
///   class ([`PartitionMap::in_class_at`] on the state's input — a shuffle
///   changes the class mid-plan, so the plan-wide `class_attrs` is not
///   enough), the set is injected immediately under a [`FilterScope`] —
///   rows of other partitions pass unprobed — so partition `p` starts
///   pruning sideways the moment its build side completes, well before
///   slow (skewed) partitions finish. The scope check hashes the probed
///   key itself, so the filter stays valid at sites on the far side of a
///   shuffle (or in serial sections) whose rows mix hash classes; only
///   sites provably confined to a *different* hash class of the same
///   attribute are skipped.
/// * Either way the set is parked in `partial_sets`; once all `dop`
///   partitions of the same logical producer have reported, their OR-merge
///   ([`AipSet::union`]) covers the whole subexpression and replaces the
///   scoped partials with one plan-wide filter — this is how sideways
///   information passes *through* a repartition boundary instead of dying
///   at it.
fn publish_and_inject_partitioned(
    shared: &Shared,
    cands: &Candidates,
    ctx: &Arc<ExecContext>,
    entry: WorkingEntry,
    map: &PartitionMap,
    p: u32,
) {
    let plan = &ctx.plan;
    let t_build = std::time::Instant::now();
    let set = Arc::new(entry.builder.finish());
    let build_nanos = t_build.elapsed().as_nanos() as u64;
    let attr_name = plan.attrs.name(entry.source.attr);
    ctx.hub.trace.filter_event(FilterEvent {
        kind: FilterEventKind::Built,
        site: entry.source.op.0,
        label: format!("ff[{attr_name}] part{p}/{}", map.dop),
        t_nanos: ctx.hub.trace.now(),
        build_nanos,
        keys: set.n_keys(),
        bytes: set.size_bytes() as u64,
    });

    // Park the partial; take the batch out when the last partition arrives.
    let union_key = (
        map.logical(entry.source.op).0,
        entry.source.input,
        entry.source.attr.0,
    );
    let complete = {
        let mut pending = shared.partial_sets.lock();
        let slot = pending.entry(union_key).or_default();
        slot.push(Arc::clone(&set));
        if slot.len() as u32 == map.dop {
            Some(std::mem::take(slot))
        } else {
            None
        }
    };

    let users = cands.users_for_source(plan, &shared.eq, &entry.source);
    let live = |site: OpId| !ctx.hub.op(site).finished.load(Ordering::Relaxed);
    // Never prune a partial-aggregate value column (not final until the
    // merge aggregate runs).
    let usable = |u: &crate::candidates::AipUser| live(u.site) && map.filterable_at(u.site, u.pos);

    // The state summarizes the *input* stream of the source operator; that
    // stream's partitioning class decides whether a partition scope is
    // sound for this attribute. A salted stream's class is claimed with
    // its exemption set: a salted key's rows were scattered or replicated
    // outside the hash invariant, so partition p's working set does not
    // cover them even when they hash home to p — the scoped filter must
    // pass them unprobed and leave them to the OR-merged union below.
    let state_stream = plan.node(entry.source.op).inputs[entry.source.input];
    if map.in_class_at(state_stream, entry.source.attr) {
        shared.registry.publish(
            entry.class,
            Arc::clone(&set),
            format!(
                "{}/input{} on {attr_name} [part {p}/{}]",
                entry.source.op, entry.source.input, map.dop
            ),
        );
        ctx.hub.trace.filter_event(FilterEvent {
            kind: FilterEventKind::Scoped,
            site: entry.source.op.0,
            label: format!("ff[{attr_name}] part{p}/{}", map.dop),
            t_nanos: ctx.hub.trace.now(),
            build_nanos: 0,
            keys: set.n_keys(),
            bytes: set.size_bytes() as u64,
        });
        let scope = FilterScope {
            partition: p,
            dop: map.dop,
        };
        let salted = map.salted_at(state_stream);
        for u in users.iter().filter(|u| usable(u)) {
            // A site whose own stream is partitioned on the probed
            // attribute and owned by partition q != p can never carry an
            // in-scope row; skip it outright. Sites partitioned on a
            // *different* class (the far side of a shuffle) mix hash
            // classes of this attribute, so they keep the filter and let
            // the per-row scope check route.
            match map.partition(u.site) {
                Some(q) if q != p && map.in_class_at(u.site, u.attr) => continue,
                _ => {}
            }
            let filter = InjectedFilter::scoped_salted(
                format!("ff[{attr_name}] @{} part{p}", u.site),
                vec![u.pos],
                Arc::clone(&set),
                Some(scope),
                salted.clone(),
            );
            ctx.inject_filter(u.site, filter, MergePolicy::Intersect);
        }
    }

    if let Some(partials) = complete {
        // OR-merge all partitions into one plan-wide set. Geometry
        // mismatches (differently sized Blooms) abandon the merge — the
        // scoped partials already injected keep working.
        let mut merged = (*partials[0]).clone();
        if partials[1..].iter().all(|s| merged.union(s).is_ok()) {
            let merged = Arc::new(merged);
            ctx.hub.trace.filter_event(FilterEvent {
                kind: FilterEventKind::OrMerged,
                site: map.logical(entry.source.op).0,
                label: format!("ff[{attr_name}] union of {}", map.dop),
                t_nanos: ctx.hub.trace.now(),
                build_nanos: 0,
                keys: merged.n_keys(),
                bytes: merged.size_bytes() as u64,
            });
            shared.registry.publish(
                entry.class,
                Arc::clone(&merged),
                format!(
                    "{}/input{} on {attr_name} [union of {} parts]",
                    map.logical(entry.source.op),
                    entry.source.input,
                    map.dop
                ),
            );
            for u in users.iter().filter(|u| usable(u)) {
                let filter = InjectedFilter::new(
                    format!("ff[{attr_name}] @{} union", u.site),
                    vec![u.pos],
                    Arc::clone(&merged),
                );
                // Intersect, not Replace: other logical sources may have
                // injected their own (still-needed) filters over the same
                // columns. The subsumed scoped partials stay in the chain;
                // they are correct, cheap (scope check first), and bounded
                // by dop per source.
                ctx.inject_filter(u.site, filter, MergePolicy::Intersect);
            }
        }
    }
}

impl ExecMonitor for FeedForward {
    fn on_query_start(&self, ctx: &Arc<ExecContext>) {
        let plan = &ctx.plan;
        // Per-partition working sets are keyed by operator index, which is
        // per-plan; residue from an earlier run of this controller (a failed
        // attempt the recovery layer is retrying, or another stage of an
        // adaptive query) would let a stale partial set complete this run's
        // OR-merge early and inject a filter missing whole partitions.
        self.shared.partial_sets.lock().clear();
        let cands = Arc::new(Candidates::compute(plan, &self.shared.eq));
        // Static estimates size the Bloom filters; feed-forward collects no
        // runtime statistics (§IV-A).
        let est = Estimator::estimate(plan);
        // Register interest: one unit per user per class.
        for (class, cc) in &cands.classes {
            self.shared
                .registry
                .register_interest(*class, cc.users.len());
        }
        // Group sources by (op, input) into collectors.
        let mut grouped: sip_common::FxHashMap<(u32, usize), Vec<AipSource>> =
            sip_common::FxHashMap::default();
        for cc in cands.classes.values() {
            for s in &cc.sources {
                grouped
                    .entry((s.op.0, s.input))
                    .or_default()
                    .push(s.clone());
            }
        }
        for ((op, input), sources) in grouped {
            let op = OpId(op);
            let child = plan.node(op).inputs[input];
            let expected = est
                .node(child)
                .rows
                .max(self.shared.config.min_expected_keys as f64);
            let entries: Vec<WorkingEntry> = sources
                .into_iter()
                .map(|source| WorkingEntry {
                    class: self.shared.eq.class(source.attr),
                    builder: AipSetBuilder::new(
                        self.shared.config.set_kind,
                        expected as usize,
                        self.shared.config.fpr,
                        self.shared.config.n_hashes,
                    ),
                    source,
                })
                .collect();
            ctx.install_collector(
                op,
                input,
                Box::new(FfCollector {
                    shared: Arc::clone(&self.shared),
                    entries,
                    scratch: DigestBuffer::default(),
                }),
            );
        }
        *self.shared.candidates.lock() = Some(cands);
    }

    fn on_input_complete(&self, _ctx: &Arc<ExecContext>, ev: &CompletionEvent<'_>) {
        // Feed-forward consumes completions via collectors; here we only
        // decrement interest for the classes this operator could have used.
        let Some(cands) = self.shared.candidates.lock().clone() else {
            return;
        };
        for (class, cc) in &cands.classes {
            if cc.users.iter().any(|u| u.consumer == ev.op) {
                self.shared.registry.decrement_interest(*class);
            }
        }
    }
}
