#![warn(missing_docs)]
//! # sip-core — Adaptive Information Passing
//!
//! The paper's primary contribution (Ives & Taylor, ICDE 2008): runtime
//! sideways information passing for push-style query plans.
//!
//! When a subexpression of an executing bushy plan completes, its result is
//! already buffered inside a pipelined hash join or hash aggregation. Both
//! algorithms here summarize that state as an *AIP set* (Bloom filter or
//! hash set over the correlated key) and inject it as a semijoin filter
//! into other, transitively-equated parts of the plan — across blocking
//! operators — pruning tuples that provably cannot contribute to the
//! result:
//!
//! * [`FeedForward`] (§IV-A) — zero-statistics, optimistic: every candidate
//!   set is built incrementally and used.
//! * [`CostBased`] (§IV-B) — an AIP Manager re-invokes the optimizer's cost
//!   estimator on each completion event (`ESTIMATEBENEFIT`, Fig. 4) and
//!   builds only provably-beneficial sets.
//!
//! [`run_query`] executes any query under `Baseline` / `Magic` /
//! `FeedForward` / `CostBased`, the four strategies of §VI.

pub mod candidates;
pub mod config;
pub mod costbased;
pub mod feedforward;
pub mod registry;
pub mod runner;

pub use candidates::{AipSource, AipUser, Candidates, ClassCandidates};
pub use config::AipConfig;
pub use costbased::{CbStats, CostBased};
pub use feedforward::FeedForward;
pub use registry::AipRegistry;
pub use runner::{run_query, run_query_dop, QuerySpec, Strategy};
