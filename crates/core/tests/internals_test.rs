//! White-box tests of the AIP controllers: registry interest life-cycle,
//! decision logging, hash-table reuse, and configuration effects.

use sip_core::{run_query, AipConfig, CostBased, FeedForward, QuerySpec, Strategy};
use sip_data::{generate, Catalog, TpchConfig};
use sip_engine::{execute, ExecOptions};
use sip_expr::{AggFunc, Expr};
use sip_optimizer::CostModel;
use sip_plan::{PredicateIndex, QueryBuilder};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn catalog() -> Catalog {
    generate(&TpchConfig::uniform(0.008)).unwrap()
}

/// part(σ brand) ⋈ lineitem ⋈ γ(avg qty per part) — selective, two blocks.
fn selective_spec(c: &Catalog) -> QuerySpec {
    let mut q = QueryBuilder::new(c);
    let p = q.scan("part", "p", &["p_partkey", "p_brand"]).unwrap();
    let pred = p.col("p_brand").unwrap().eq(Expr::lit("Brand#34"));
    let p = q.filter(p, pred);
    let l = q
        .scan("lineitem", "l", &["l_partkey", "l_quantity"])
        .unwrap();
    let pl = q.join(p, l, &[("p.p_partkey", "l.l_partkey")]).unwrap();
    let l2 = q
        .scan("lineitem", "l2", &["l_partkey", "l_quantity"])
        .unwrap();
    let qty = l2.col("l_quantity").unwrap();
    let avg = q
        .aggregate(l2, &["l_partkey"], &[(AggFunc::Avg, qty, "avg_qty")])
        .unwrap();
    let j = q.join(pl, avg, &[("p.p_partkey", "l2.l_partkey")]).unwrap();
    let out = q.project_cols(j, &["p.p_partkey", "avg_qty"]).unwrap();
    QuerySpec::new(out.into_plan(), q.into_attrs()).unwrap()
}

#[test]
fn feed_forward_registry_collects_completed_sets() {
    let c = catalog();
    let spec = selective_spec(&c);
    let eq = PredicateIndex::build(&spec.plan).eq;
    let ff = FeedForward::new(eq, AipConfig::paper());
    let phys = Arc::new(spec.lower(&c, Strategy::FeedForward).unwrap());
    execute(Arc::clone(&phys), ff.clone(), ExecOptions::default()).unwrap();
    // Candidates were computed and published sets recorded with provenance.
    let cands = ff.candidates().expect("candidates computed at start");
    assert!(!cands.classes.is_empty());
    assert!(ff.registry().total_published() > 0);
    let display = ff.registry().display();
    assert!(display.contains("Bloom"), "{display}");
}

#[test]
fn cost_based_logs_every_decision() {
    let c = catalog();
    let spec = selective_spec(&c);
    let eq = PredicateIndex::build(&spec.plan).eq;
    let cb = CostBased::new(eq, AipConfig::paper(), CostModel::default());
    let phys = Arc::new(spec.lower(&c, Strategy::CostBased).unwrap());
    execute(phys, cb.clone(), ExecOptions::default()).unwrap();
    let considered = cb.stats.considered.load(Ordering::Relaxed);
    let built = cb.stats.built.load(Ordering::Relaxed);
    let rejected = cb.stats.rejected.load(Ordering::Relaxed);
    assert!(considered > 0);
    assert_eq!(considered, built + rejected);
    assert_eq!(cb.decisions().len() as u64, considered);
}

#[test]
fn reject_all_config_builds_nothing() {
    let c = catalog();
    let spec = selective_spec(&c);
    let eq = PredicateIndex::build(&spec.plan).eq;
    let cfg = AipConfig {
        ship_cost_per_byte: 1e15,
        ..AipConfig::paper()
    };
    let cb = CostBased::new(eq, cfg, CostModel::default());
    let phys = Arc::new(spec.lower(&c, Strategy::CostBased).unwrap());
    let out = execute(phys, cb.clone(), ExecOptions::default()).unwrap();
    assert_eq!(cb.stats.built.load(Ordering::Relaxed), 0);
    assert!(cb.stats.considered.load(Ordering::Relaxed) > 0);
    assert_eq!(out.metrics.filters_injected, 0);
    assert_eq!(out.metrics.aip_dropped_total, 0);
}

#[test]
fn hash_table_reuse_produces_exact_sets() {
    // With reuse enabled (default), a join side keyed by the candidate
    // attribute yields a Hash AIP set; disabling it falls back to Bloom.
    let c = catalog();
    let spec = selective_spec(&c);
    let eq = PredicateIndex::build(&spec.plan).eq;
    let with_reuse = CostBased::new(eq.clone(), AipConfig::paper(), CostModel::default());
    let phys = Arc::new(spec.lower(&c, Strategy::CostBased).unwrap());
    execute(
        Arc::clone(&phys),
        with_reuse.clone(),
        ExecOptions::default(),
    )
    .unwrap();
    let log = with_reuse.decisions().join("\n");
    // At least one decision should mention a Hash build (join-side reuse).
    if log.contains("build") {
        // Either representation may win depending on which source fires;
        // the log must name the representation explicitly either way.
        assert!(log.contains("(Hash,") || log.contains("(Bloom,"), "{log}");
    }

    let no_reuse_cfg = AipConfig {
        reuse_hash_tables: false,
        ..AipConfig::paper()
    };
    let no_reuse = CostBased::new(eq, no_reuse_cfg, CostModel::default());
    execute(phys, no_reuse.clone(), ExecOptions::default()).unwrap();
    let log = no_reuse.decisions().join("\n");
    assert!(
        !log.contains("(Hash,"),
        "reuse disabled but Hash built: {log}"
    );
}

#[test]
fn min_expected_keys_floors_bloom_sizing() {
    // A tiny min_expected_keys must not break correctness (filters stay
    // sound, results unchanged).
    let c = catalog();
    let spec = selective_spec(&c);
    let base = run_query(
        &spec,
        &c,
        Strategy::Baseline,
        ExecOptions::default(),
        &AipConfig::paper(),
    )
    .unwrap();
    let tiny = AipConfig {
        min_expected_keys: 1,
        fpr: 0.5,
        ..AipConfig::paper()
    };
    let out = run_query(
        &spec,
        &c,
        Strategy::FeedForward,
        ExecOptions::default(),
        &tiny,
    )
    .unwrap();
    assert_eq!(
        sip_engine::canonical(&out.rows),
        sip_engine::canonical(&base.rows)
    );
}

#[test]
fn multiple_runs_share_no_state() {
    // Controllers are per-query; running the same spec twice must not leak
    // registry contents across runs.
    let c = catalog();
    let spec = selective_spec(&c);
    for _ in 0..2 {
        let eq = PredicateIndex::build(&spec.plan).eq;
        let ff = FeedForward::new(eq, AipConfig::paper());
        let phys = Arc::new(spec.lower(&c, Strategy::FeedForward).unwrap());
        execute(phys, ff.clone(), ExecOptions::default()).unwrap();
        // Each run publishes only its own sets (bounded by candidates).
        let cands = ff.candidates().unwrap();
        let max_sources: usize = cands.classes.values().map(|c| c.sources.len()).sum();
        assert!(ff.registry().total_published() <= max_sources);
    }
}
