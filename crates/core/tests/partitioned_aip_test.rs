//! Partition-parallel AIP: every strategy, run through `run_query_dop` at
//! several degrees of parallelism over Zipf-skewed data, must agree with
//! the single-threaded oracle — and the per-partition taps must actually
//! fire.

use sip_core::{run_query_dop, AipConfig, QuerySpec, Strategy};
use sip_data::{generate, Catalog, TpchConfig};
use sip_engine::{canonical, execute_oracle, ExecOptions};
use sip_expr::{AggFunc, CmpOp, Expr};
use sip_plan::QueryBuilder;

fn skewed_catalog() -> Catalog {
    generate(&TpchConfig {
        scale_factor: 0.01,
        seed: 7,
        zipf_z: 0.5,
    })
    .unwrap()
}

/// Fig. 1 miniature with a selective part filter: the filtered part side
/// completes early and prunes both partsupp scans — per partition.
fn partkey_query(c: &Catalog) -> QuerySpec {
    let mut q = QueryBuilder::new(c);
    let p = q.scan("part", "p", &["p_partkey", "p_size"]).unwrap();
    let pred = p.col("p_size").unwrap().cmp(CmpOp::Lt, Expr::lit(10i64));
    let p = q.filter(p, pred);
    let ps1 = q.scan("partsupp", "ps1", &["ps_partkey"]).unwrap();
    let j1 = q
        .join(p, ps1, &[("p.p_partkey", "ps1.ps_partkey")])
        .unwrap();
    let ps2 = q
        .scan("partsupp", "ps2", &["ps_partkey", "ps_availqty"])
        .unwrap();
    let qty = ps2.col("ps_availqty").unwrap();
    let avail = q
        .aggregate(ps2, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
        .unwrap();
    let j2 = q
        .join(j1, avail, &[("p.p_partkey", "ps2.ps_partkey")])
        .unwrap();
    let total = j2.col("avail").unwrap();
    let sum = q
        .aggregate(j2, &[], &[(AggFunc::Sum, total, "grand")])
        .unwrap();
    QuerySpec::new(sum.into_plan(), q.into_attrs()).unwrap()
}

#[test]
fn all_strategies_agree_with_oracle_across_dops() {
    let c = skewed_catalog();
    let spec = partkey_query(&c);
    let phys = spec.lower(&c, Strategy::Baseline).unwrap();
    let expected = canonical(&execute_oracle(&phys).unwrap());
    for strategy in Strategy::ALL {
        for dop in [1u32, 2, 4] {
            let (out, map) = run_query_dop(
                &spec,
                &c,
                strategy,
                ExecOptions::default(),
                &AipConfig::paper(),
                dop,
            )
            .unwrap();
            assert_eq!(
                canonical(&out.rows),
                expected,
                "strategy {strategy} dop {dop} diverged"
            );
            assert_eq!(map.is_some(), dop > 1, "partitioned path at dop {dop}");
        }
    }
}

#[test]
fn partitioned_feed_forward_prunes_per_partition() {
    let c = skewed_catalog();
    let spec = partkey_query(&c);
    let (out, map) = run_query_dop(
        &spec,
        &c,
        Strategy::FeedForward,
        ExecOptions::default(),
        &AipConfig::paper(),
        4,
    )
    .unwrap();
    let map = map.expect("partitioned");
    assert!(out.metrics.filters_injected > 0, "no filters injected");
    assert!(
        out.metrics.aip_dropped_total > 0,
        "AIP never pruned anything"
    );
    // Per-partition rollup: filters fired inside worker partitions, not
    // just in the serial tail.
    let rollup = out.metrics.per_partition(&map);
    assert_eq!(rollup.len(), 4);
    let partition_drops: u64 = rollup.iter().map(|s| s.aip_dropped).sum();
    assert!(partition_drops > 0, "no per-partition pruning: {rollup:?}");
}

/// The cost-based manager's union tracker (ported from feed-forward):
/// when every partition of one producer builds (and accepts) its scoped
/// set, the OR-merge injects one plan-wide unscoped filter, logged as a
/// `union` decision — and results stay exact.
#[test]
fn cost_based_or_merges_partition_sets_plan_wide() {
    use std::sync::Arc;
    let c = skewed_catalog();
    let spec = partkey_query(&c);
    let phys = spec.lower(&c, Strategy::CostBased).unwrap();
    let expected = canonical(&execute_oracle(&phys).unwrap());
    let eq = sip_plan::PredicateIndex::build(&spec.plan).eq;
    let cb = sip_core::CostBased::new(
        eq,
        AipConfig::hash_sets(),
        sip_optimizer::CostModel::default(),
    );
    // Delay the probed fact source (both partsupp scans) so every
    // partition's build side completes while its users are still live —
    // the acceptance decision is then deterministic across schedules.
    let opts =
        ExecOptions::default().with_delay("partsupp", sip_engine::DelayModel::paper_delayed());
    let (out, map) = sip_parallel::PartitionedExec::new(3)
        .execute(Arc::new(phys), cb.clone(), opts)
        .unwrap();
    assert!(map.is_some(), "partitioned path must run");
    assert_eq!(canonical(&out.rows), expected);
    let decisions = cb.decisions();
    assert!(
        decisions.iter().any(|d| d.starts_with("union")),
        "no cross-partition OR-merge logged:\n{}",
        decisions.join("\n")
    );
    // The merged set reached the registry as a plan-wide publication.
    assert!(cb.registry().display().contains("union of 3 parts"));
}

#[test]
fn exact_hash_sets_or_merge_across_partitions() {
    // Hash AIP sets union losslessly, so the plan-wide OR-merge path runs
    // to completion (Bloom unions depend on same-geometry partials).
    let c = skewed_catalog();
    let spec = partkey_query(&c);
    let phys = spec.lower(&c, Strategy::Baseline).unwrap();
    let expected = canonical(&execute_oracle(&phys).unwrap());
    let (out, _) = run_query_dop(
        &spec,
        &c,
        Strategy::FeedForward,
        ExecOptions::default(),
        &AipConfig::hash_sets(),
        3,
    )
    .unwrap();
    assert_eq!(canonical(&out.rows), expected);
    assert!(out.metrics.filters_injected > 0);
}
