//! End-to-end AIP tests: correctness (all strategies ≡ oracle) and
//! effectiveness (AIP actually prunes rows and reduces state).

use sip_core::{run_query, AipConfig, QuerySpec, Strategy};
use sip_data::{generate, Catalog, TpchConfig};
use sip_engine::{canonical, execute_oracle, DelayModel, ExecOptions};
use sip_expr::{AggFunc, CmpOp, Expr};
use sip_plan::QueryBuilder;
use std::time::Duration;

fn catalog() -> Catalog {
    generate(&TpchConfig {
        scale_factor: 0.01,
        seed: 42,
        zipf_z: 0.0,
    })
    .unwrap()
}

/// The paper's running example (Fig. 1), scaled to the generated data:
/// parts cheap to supply relative to retail, whose stock is low relative
/// to recent sales.
fn running_example(c: &Catalog) -> QuerySpec {
    let mut q = QueryBuilder::new(c);
    let p = q
        .scan("part", "p", &["p_partkey", "p_retailprice"])
        .unwrap();
    let ps1 = q
        .scan("partsupp", "ps1", &["ps_partkey", "ps_supplycost"])
        .unwrap();
    let residual = ps1
        .col("ps_supplycost")
        .unwrap()
        .mul(Expr::lit(2.0f64))
        .cmp(CmpOp::Lt, p.col("p_retailprice").unwrap());
    let left = q
        .join_residual(p, ps1, &[("p.p_partkey", "ps1.ps_partkey")], Some(residual))
        .unwrap();
    let left = q.distinct(q.project_cols(left, &["p.p_partkey"]).unwrap());

    let ps2 = q
        .scan("partsupp", "ps2", &["ps_partkey", "ps_availqty"])
        .unwrap();
    let qty = ps2.col("ps_availqty").unwrap();
    let avail = q
        .aggregate(ps2, &["ps_partkey"], &[(AggFunc::Sum, qty, "avail")])
        .unwrap();

    let l = q
        .scan(
            "lineitem",
            "l",
            &["l_partkey", "l_quantity", "l_receiptdate"],
        )
        .unwrap();
    let recent = l
        .col("l_receiptdate")
        .unwrap()
        .gt(Expr::lit(sip_common::Date::parse("1996-01-01").unwrap()));
    let l = q.filter(l, recent);
    let lq = l.col("l_quantity").unwrap();
    let sold = q
        .aggregate(l, &["l_partkey"], &[(AggFunc::Sum, lq, "numsold")])
        .unwrap();

    let j1 = q
        .join(left, avail, &[("p.p_partkey", "ps2.ps_partkey")])
        .unwrap();
    // The paper's constant (10*avail < numsold) is calibrated to TPC-H's
    // 1 GB regime; at laptop scale availqty sums dwarf per-part sales, so
    // the equivalent low-stock predicate uses a rescaled constant.
    let pred = j1.col("avail").unwrap().cmp(
        CmpOp::Lt,
        Expr::lit(50.0f64).mul(Expr::attr(sold.attr("numsold").unwrap())),
    );
    let j2 = q
        .join_residual(j1, sold, &[("p.p_partkey", "l.l_partkey")], Some(pred))
        .unwrap();
    let out = q.distinct(q.project_cols(j2, &["p.p_partkey"]).unwrap());
    QuerySpec::new(out.into_plan(), q.into_attrs()).unwrap()
}

/// TPC-H 17 shape with a selective part filter.
fn q17_shape(c: &Catalog) -> QuerySpec {
    let mut q = QueryBuilder::new(c);
    let p = q
        .scan("part", "p", &["p_partkey", "p_brand", "p_container"])
        .unwrap();
    let pred = p
        .col("p_brand")
        .unwrap()
        .eq(Expr::lit("Brand#34"))
        .and(p.col("p_container").unwrap().eq(Expr::lit("MED CAN")));
    let p = q.filter(p, pred);
    let l = q
        .scan(
            "lineitem",
            "l",
            &["l_partkey", "l_quantity", "l_extendedprice"],
        )
        .unwrap();
    let pl = q.join(p, l, &[("p.p_partkey", "l.l_partkey")]).unwrap();
    let l2 = q
        .scan("lineitem", "l2", &["l_partkey", "l_quantity"])
        .unwrap();
    let q2 = l2.col("l_quantity").unwrap();
    let avg = q
        .aggregate(l2, &["l_partkey"], &[(AggFunc::Avg, q2, "avg_qty")])
        .unwrap();
    let residual = pl.col("l.l_quantity").unwrap().cmp(
        CmpOp::Lt,
        Expr::lit(0.2f64).mul(avg.col("avg_qty").unwrap()),
    );
    let joined = q
        .join_residual(pl, avg, &[("p.p_partkey", "l2.l_partkey")], Some(residual))
        .unwrap();
    let price = joined.col("l.l_extendedprice").unwrap();
    let total = q
        .aggregate(joined, &[], &[(AggFunc::Sum, price, "total")])
        .unwrap();
    QuerySpec::new(total.into_plan(), q.into_attrs()).unwrap()
}

fn oracle_result(spec: &QuerySpec, c: &Catalog) -> Vec<String> {
    let phys = spec.lower(c, Strategy::Baseline).unwrap();
    canonical(&execute_oracle(&phys).unwrap())
}

#[test]
fn all_strategies_agree_on_running_example() {
    let c = catalog();
    let spec = running_example(&c);
    let expected = oracle_result(&spec, &c);
    assert!(!expected.is_empty(), "query should produce rows");
    for strategy in Strategy::ALL {
        let out = run_query(
            &spec,
            &c,
            strategy,
            ExecOptions::default(),
            &AipConfig::paper(),
        )
        .unwrap();
        assert_eq!(
            canonical(&out.rows),
            expected,
            "strategy {strategy} diverged"
        );
    }
}

#[test]
fn all_strategies_agree_on_q17_shape() {
    let c = catalog();
    let spec = q17_shape(&c);
    let expected = oracle_result(&spec, &c);
    for strategy in Strategy::ALL {
        let out = run_query(
            &spec,
            &c,
            strategy,
            ExecOptions::default(),
            &AipConfig::paper(),
        )
        .unwrap();
        assert_eq!(
            canonical(&out.rows),
            expected,
            "strategy {strategy} diverged"
        );
    }
}

#[test]
fn feed_forward_injects_and_prunes() {
    let c = catalog();
    let spec = q17_shape(&c);
    let out = run_query(
        &spec,
        &c,
        Strategy::FeedForward,
        ExecOptions::default(),
        &AipConfig::paper(),
    )
    .unwrap();
    assert!(
        out.metrics.filters_injected > 0,
        "feed-forward should inject filters"
    );
    assert!(
        out.metrics.aip_dropped_total > 0,
        "filters should prune rows (metrics: {:?})",
        out.metrics.filters_injected
    );
}

#[test]
fn aip_reduces_state_on_selective_query() {
    // Q17 shape: the tiny part filter should let AIP prune the big
    // lineitem aggregation dramatically once the outer side completes.
    let c = catalog();
    let spec = q17_shape(&c);
    // Delay l2 so the outer side reliably completes first — the adaptive
    // scenario the paper's Example 3.1 describes. Both strategies run under
    // the same delay so only information passing differs.
    let delayed = || {
        ExecOptions::default().with_delay("l2", DelayModel::initial_only(Duration::from_millis(60)))
    };
    let base = run_query(
        &spec,
        &c,
        Strategy::Baseline,
        delayed(),
        &AipConfig::paper(),
    )
    .unwrap();
    let ff = run_query(
        &spec,
        &c,
        Strategy::FeedForward,
        delayed(),
        &AipConfig::paper(),
    )
    .unwrap();
    // Locate the per-part aggregation over the delayed l2 scan: the
    // aggregate whose child is the scan bound as "l2" (lowering is
    // deterministic, so node ids match across strategies).
    let phys = spec.lower(&c, Strategy::Baseline).unwrap();
    let l2_scan = phys
        .nodes
        .iter()
        .find(|n| matches!(&n.kind, sip_engine::PhysKind::Scan { binding, .. } if binding == "l2"))
        .unwrap()
        .id;
    let agg = phys.parent(l2_scan).unwrap();
    assert!(matches!(
        phys.node(agg).kind,
        sip_engine::PhysKind::Aggregate { .. }
    ));
    let base_in = base.metrics.per_op[agg.index()].rows_in[0];
    let ff_in = ff.metrics.per_op[agg.index()].rows_in[0];
    assert!(
        ff_in * 10 < base_in,
        "FF should prune l2 aggregation input: {ff_in} vs baseline {base_in}"
    );
    let base_peak = base.metrics.per_op[agg.index()].state_peak;
    let ff_peak = ff.metrics.per_op[agg.index()].state_peak;
    assert!(
        ff_peak * 5 < base_peak,
        "FF should shrink l2 aggregation state: {ff_peak} vs baseline {base_peak}"
    );
}

#[test]
fn cost_based_builds_beneficial_sets_only() {
    let c = catalog();
    let spec = q17_shape(&c);
    let delayed = ExecOptions::default()
        .with_delay("l2", DelayModel::initial_only(Duration::from_millis(60)));
    let out = run_query(&spec, &c, Strategy::CostBased, delayed, &AipConfig::paper()).unwrap();
    assert!(out.metrics.filters_injected > 0, "CB should inject on q17");
    assert!(out.metrics.aip_dropped_total > 0);
}

#[test]
fn strategies_agree_under_delay_and_tiny_batches() {
    let c = catalog();
    let spec = running_example(&c);
    let expected = oracle_result(&spec, &c);
    for strategy in [Strategy::FeedForward, Strategy::CostBased] {
        let opts = ExecOptions {
            batch_size: 7,
            channel_capacity: 2,
            ..Default::default()
        }
        .with_delay("ps2", DelayModel::initial_only(Duration::from_millis(25)));
        let out = run_query(&spec, &c, strategy, opts, &AipConfig::paper()).unwrap();
        assert_eq!(canonical(&out.rows), expected, "{strategy} under delay");
    }
}

#[test]
fn hash_set_config_also_correct() {
    let c = catalog();
    let spec = q17_shape(&c);
    let expected = oracle_result(&spec, &c);
    for strategy in [Strategy::FeedForward, Strategy::CostBased] {
        let out = run_query(
            &spec,
            &c,
            strategy,
            ExecOptions::default(),
            &AipConfig::hash_sets(),
        )
        .unwrap();
        assert_eq!(canonical(&out.rows), expected, "{strategy} with hash sets");
    }
}

#[test]
fn skewed_data_strategies_agree() {
    let c = generate(&TpchConfig {
        scale_factor: 0.01,
        seed: 42,
        zipf_z: 0.5,
    })
    .unwrap();
    let spec = q17_shape(&c);
    let expected = oracle_result(&spec, &c);
    for strategy in Strategy::ALL {
        let out = run_query(
            &spec,
            &c,
            strategy,
            ExecOptions::default(),
            &AipConfig::paper(),
        )
        .unwrap();
        assert_eq!(canonical(&out.rows), expected, "{strategy} on skewed data");
    }
}
