//! Property-based tests for expressions: the LIKE matcher against a naive
//! reference, and algebraic properties of evaluation.

use proptest::prelude::*;
use sip_common::{Row, Value};
use sip_expr::{like_match, AggFunc, CmpOp, Expr};

/// Naive exponential reference matcher (correct by construction).
fn reference_like(text: &[char], pat: &[char]) -> bool {
    match (text.first(), pat.first()) {
        (_, None) => text.is_empty(),
        (_, Some('%')) => {
            reference_like(text, &pat[1..]) || (!text.is_empty() && reference_like(&text[1..], pat))
        }
        (None, Some(_)) => false,
        (Some(t), Some('_')) => {
            let _ = t;
            reference_like(&text[1..], &pat[1..])
        }
        (Some(t), Some(p)) => *t == *p && reference_like(&text[1..], &pat[1..]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn like_matches_reference(text in "[abc]{0,10}", pat in "[abc%_]{0,8}") {
        let t: Vec<char> = text.chars().collect();
        let p: Vec<char> = pat.chars().collect();
        prop_assert_eq!(
            like_match(&text, &pat),
            reference_like(&t, &p),
            "text={:?} pat={:?}", text, pat
        );
    }

    #[test]
    fn cmp_flip_is_involutive_and_consistent(a in any::<i64>(), b in any::<i64>()) {
        let row = Row::new(vec![Value::Int(a), Value::Int(b)]);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            prop_assert_eq!(op.flip().flip(), op);
            let direct = Expr::Col(0).cmp(op, Expr::Col(1)).eval_bool(&row).unwrap();
            let flipped = Expr::Col(1).cmp(op.flip(), Expr::Col(0)).eval_bool(&row).unwrap();
            prop_assert_eq!(direct, flipped);
        }
    }

    #[test]
    fn int_arithmetic_matches_native(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let row = Row::new(vec![Value::Int(a), Value::Int(b)]);
        let add = Expr::Col(0).add(Expr::Col(1)).eval(&row).unwrap();
        prop_assert_eq!(add, Value::Int(a + b));
        let mul = Expr::Col(0).mul(Expr::Col(1)).eval(&row).unwrap();
        prop_assert_eq!(mul, Value::Int(a * b));
        if b != 0 {
            let div = Expr::Col(0).div(Expr::Col(1)).eval(&row).unwrap();
            prop_assert_eq!(div, Value::Int(a / b));
        }
    }

    #[test]
    fn demorgan_holds(a in any::<bool>(), b in any::<bool>()) {
        let row = Row::new(vec![Value::Int(a as i64), Value::Int(b as i64)]);
        let not_and = Expr::Not(Box::new(Expr::Col(0).and(Expr::Col(1))))
            .eval_bool(&row)
            .unwrap();
        let or_nots = Expr::Not(Box::new(Expr::Col(0)))
            .or(Expr::Not(Box::new(Expr::Col(1))))
            .eval_bool(&row)
            .unwrap();
        prop_assert_eq!(not_and, or_nots);
    }

    #[test]
    fn sum_is_order_independent(mut vals in prop::collection::vec(-10_000i64..10_000, 0..40)) {
        let run = |xs: &[i64]| {
            let mut acc = AggFunc::Sum.accumulator();
            for &x in xs {
                acc.update(&Value::Int(x)).unwrap();
            }
            acc.finish()
        };
        let forward = run(&vals);
        vals.reverse();
        let backward = run(&vals);
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn min_max_bound_all_inputs(vals in prop::collection::vec(any::<i64>(), 1..40)) {
        let mut mn = AggFunc::Min.accumulator();
        let mut mx = AggFunc::Max.accumulator();
        for &x in &vals {
            mn.update(&Value::Int(x)).unwrap();
            mx.update(&Value::Int(x)).unwrap();
        }
        prop_assert_eq!(mn.finish(), Value::Int(*vals.iter().min().unwrap()));
        prop_assert_eq!(mx.finish(), Value::Int(*vals.iter().max().unwrap()));
    }

    #[test]
    fn conjuncts_rejoin_equivalently(n in 1usize..6, vals in prop::collection::vec(any::<bool>(), 6)) {
        // Build a conjunction of n boolean literals, split, rejoin: same value.
        let exprs: Vec<Expr> = vals.iter().take(n).map(|&b| Expr::lit(b as i64)).collect();
        let joined = Expr::conjoin(exprs.clone()).unwrap();
        let row = Row::new(vec![]);
        let expected = vals.iter().take(n).all(|&b| b);
        prop_assert_eq!(joined.eval_bool(&row).unwrap(), expected);
        prop_assert_eq!(joined.conjuncts().len(), n);
    }
}
