#![warn(missing_docs)]
//! # sip-expr
//!
//! Scalar expressions and aggregate accumulators.
//!
//! Expressions are written over query-global [`sip_common::AttrId`]s when a
//! plan is being built (`Expr::Attr`), then *bound* to physical row positions
//! (`Expr::Col`) once an operator's input layout is known. Evaluation only
//! accepts fully-bound expressions — probing an unbound expression is a
//! reported error, not a silent misread.

pub mod agg;
pub mod cols;
pub mod expr;
pub mod like;

pub use agg::{AggAccumulator, AggFunc};
pub use cols::eval_predicate_mask;
pub use expr::{ArithOp, CmpOp, Expr};
pub use like::like_match;
