//! Vectorized predicate evaluation over [`ColumnarBatch`]es.
//!
//! [`eval_predicate_mask`] compiles nothing — it walks the bound expression
//! tree once per batch, dispatching each comparison leaf to a typed loop
//! over the underlying column slices. Only shapes with a columnar kernel
//! are handled (`Col ⋈ Lit`, `Col ⋈ Col`, `year(Col) ⋈ Lit`, `LIKE` over a
//! string column, and `AND`/`OR`/`NOT` over those); anything else returns
//! `false` so the caller can fall back to row-at-a-time [`Expr::eval_bool`],
//! which also preserves the row path's error behavior (e.g. `LIKE` over an
//! integer column is a reported type error, never a silent `false`).
//!
//! Semantics mirror the row path exactly: a comparison involving SQL NULL
//! is *false* (so `NOT` over it is *true*), numeric comparisons are
//! cross-type via `total_cmp` with `-0.0` normalized to `0.0`, and
//! heterogeneous types order by the same type rank `Value::sql_cmp` uses.

use crate::expr::{CmpOp, Expr};
use crate::like::like_match;
use sip_common::{ColKind, ColumnarBatch, Date, Value};

/// Normalize `-0.0` to `0.0` so comparisons agree with `Value::sql_cmp`.
#[inline]
fn nz(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

/// The type rank `Value::sql_cmp` falls back to for heterogeneous
/// comparisons (NULL < Int < Float < Str < Date).
#[inline]
fn rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int(_) => 1,
        Value::Float(_) => 2,
        Value::Str(_) => 3,
        Value::Date(_) => 4,
    }
}

#[inline]
fn kind_rank(k: ColKind) -> u8 {
    match k {
        ColKind::Int => 1,
        ColKind::Float => 2,
        ColKind::Str => 3,
        ColKind::Date => 4,
        ColKind::Mixed => u8::MAX, // never rank-compared; handled per value
    }
}

/// Swap a comparison's sides: `lit op col` ⇒ `col flip(op) lit`.
#[inline]
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Evaluate `expr` as a keep-mask over `batch`: `keep[i]` is `true` iff row
/// `i` passes the predicate. Returns `false` (leaving `keep` unspecified)
/// when the expression shape has no columnar kernel — the caller must then
/// fall back to row-at-a-time evaluation.
pub fn eval_predicate_mask(expr: &Expr, batch: &ColumnarBatch, keep: &mut Vec<bool>) -> bool {
    keep.clear();
    keep.resize(batch.len(), false);
    mask_into(expr, batch, keep)
}

/// Fill `out` (one slot per row, fully overwritten) with the mask for
/// `expr`, or return `false` if unsupported.
fn mask_into(expr: &Expr, batch: &ColumnarBatch, out: &mut [bool]) -> bool {
    match expr {
        Expr::And(l, r) => {
            if !mask_into(l, batch, out) {
                return false;
            }
            let mut rhs = vec![false; out.len()];
            if !mask_into(r, batch, &mut rhs) {
                return false;
            }
            for (a, b) in out.iter_mut().zip(rhs) {
                *a = *a && b;
            }
            true
        }
        Expr::Or(l, r) => {
            if !mask_into(l, batch, out) {
                return false;
            }
            let mut rhs = vec![false; out.len()];
            if !mask_into(r, batch, &mut rhs) {
                return false;
            }
            for (a, b) in out.iter_mut().zip(rhs) {
                *a = *a || b;
            }
            true
        }
        // The row path evaluates `NOT e` as `!e.as_bool()`; for the shapes
        // handled here `e` is always 0/1 (NULL comparisons collapse to
        // false), so a mask flip is exact — including `NOT (x < NULL)`
        // being true, as in the row path.
        Expr::Not(e) => {
            if !mask_into(e, batch, out) {
                return false;
            }
            for a in out.iter_mut() {
                *a = !*a;
            }
            true
        }
        Expr::Cmp(l, op, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) => cmp_col_lit(batch, *c, *op, v, out),
            (Expr::Lit(v), Expr::Col(c)) => cmp_col_lit(batch, *c, flip(*op), v, out),
            (Expr::Col(a), Expr::Col(b)) => cmp_col_col(batch, *a, *b, *op, out),
            (Expr::Year(inner), Expr::Lit(v)) => match inner.as_ref() {
                Expr::Col(c) => cmp_year_lit(batch, *c, *op, v, out),
                _ => false,
            },
            (Expr::Lit(v), Expr::Year(inner)) => match inner.as_ref() {
                Expr::Col(c) => cmp_year_lit(batch, *c, flip(*op), v, out),
                _ => false,
            },
            (Expr::Lit(a), Expr::Lit(b)) => {
                let fill = !a.is_null() && !b.is_null() && op.matches(a.sql_cmp(b));
                out.fill(fill);
                true
            }
            _ => false,
        },
        Expr::Like(inner, pattern) => match inner.as_ref() {
            Expr::Col(c) if batch.kind(*c) == ColKind::Str => {
                for (i, slot) in out.iter_mut().enumerate() {
                    // `str_at` is None exactly for NULL slots, which the
                    // row path maps to false.
                    *slot = batch.str_at(*c, i).is_some_and(|s| like_match(s, pattern));
                }
                true
            }
            _ => false,
        },
        _ => false,
    }
}

/// Typed kernels for `col op lit`. NULL slots (and a NULL literal) are
/// always false, matching the row path's `Cmp` NULL handling.
fn cmp_col_lit(batch: &ColumnarBatch, c: usize, op: CmpOp, lit: &Value, out: &mut [bool]) -> bool {
    if lit.is_null() {
        out.fill(false);
        return true;
    }
    let nulls = batch.may_have_nulls(c);
    macro_rules! fill {
        ($slice:expr, $i:ident, $a:ident, $cmp:expr) => {{
            let data = $slice;
            for ($i, slot) in out.iter_mut().enumerate() {
                let $a = data[$i];
                *slot = (!nulls || batch.is_valid(c, $i)) && op.matches($cmp);
            }
            true
        }};
    }
    match (batch.kind(c), lit) {
        (ColKind::Int, Value::Int(b)) => {
            fill!(batch.ints(c).expect("Int column"), i, a, a.cmp(b))
        }
        (ColKind::Int, Value::Float(b)) => {
            let b = nz(*b);
            fill!(
                batch.ints(c).expect("Int column"),
                i,
                a,
                (a as f64).total_cmp(&b)
            )
        }
        (ColKind::Float, Value::Float(b)) => {
            let b = nz(*b);
            fill!(
                batch.floats(c).expect("Float column"),
                i,
                a,
                nz(a).total_cmp(&b)
            )
        }
        (ColKind::Float, Value::Int(b)) => {
            let b = *b as f64;
            fill!(
                batch.floats(c).expect("Float column"),
                i,
                a,
                nz(a).total_cmp(&b)
            )
        }
        (ColKind::Date, Value::Date(b)) => {
            let b = b.days();
            fill!(batch.dates(c).expect("Date column"), i, a, a.cmp(&b))
        }
        (ColKind::Str, Value::Str(s)) => {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = match batch.str_at(c, i) {
                    Some(a) => op.matches(a.cmp(s)),
                    None => false,
                };
            }
            true
        }
        // Mixed columns compare per value — clones are cheap (`Arc` bumps
        // for dictionary strings) and exactness beats falling back to full
        // row materialization.
        (ColKind::Mixed, _) => {
            for (i, slot) in out.iter_mut().enumerate() {
                let v = batch.value_at(c, i);
                *slot = !v.is_null() && op.matches(v.sql_cmp(lit));
            }
            true
        }
        // Heterogeneous typed comparison: `sql_cmp` orders by type rank,
        // which is constant across the whole column.
        (k, _) => {
            let fill = op.matches(kind_rank(k).cmp(&rank(lit)));
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = (!nulls || batch.is_valid(c, i)) && fill;
            }
            true
        }
    }
}

/// Typed kernels for `col op col` (same-batch). Only allocation-free kind
/// pairs are handled; anything else falls back to the row path.
fn cmp_col_col(batch: &ColumnarBatch, a: usize, b: usize, op: CmpOp, out: &mut [bool]) -> bool {
    let an = batch.may_have_nulls(a);
    let bn = batch.may_have_nulls(b);
    macro_rules! fill2 {
        ($la:expr, $lb:expr, $i:ident, $x:ident, $y:ident, $cmp:expr) => {{
            let (da, db) = ($la, $lb);
            for ($i, slot) in out.iter_mut().enumerate() {
                let ($x, $y) = (da[$i], db[$i]);
                *slot = (!an || batch.is_valid(a, $i))
                    && (!bn || batch.is_valid(b, $i))
                    && op.matches($cmp);
            }
            true
        }};
    }
    match (batch.kind(a), batch.kind(b)) {
        (ColKind::Int, ColKind::Int) => fill2!(
            batch.ints(a).expect("Int column"),
            batch.ints(b).expect("Int column"),
            i,
            x,
            y,
            x.cmp(&y)
        ),
        (ColKind::Float, ColKind::Float) => fill2!(
            batch.floats(a).expect("Float column"),
            batch.floats(b).expect("Float column"),
            i,
            x,
            y,
            nz(x).total_cmp(&nz(y))
        ),
        (ColKind::Int, ColKind::Float) => fill2!(
            batch.ints(a).expect("Int column"),
            batch.floats(b).expect("Float column"),
            i,
            x,
            y,
            (x as f64).total_cmp(&nz(y))
        ),
        (ColKind::Float, ColKind::Int) => fill2!(
            batch.floats(a).expect("Float column"),
            batch.ints(b).expect("Int column"),
            i,
            x,
            y,
            nz(x).total_cmp(&(y as f64))
        ),
        (ColKind::Date, ColKind::Date) => fill2!(
            batch.dates(a).expect("Date column"),
            batch.dates(b).expect("Date column"),
            i,
            x,
            y,
            x.cmp(&y)
        ),
        (ColKind::Str, ColKind::Str) => {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = match (batch.str_at(a, i), batch.str_at(b, i)) {
                    (Some(x), Some(y)) => op.matches(x.cmp(y)),
                    _ => false,
                };
            }
            true
        }
        _ => false,
    }
}

/// Kernel for `year(col) op lit` over a Date column: the year extraction
/// is pure day-count arithmetic, so the whole predicate stays columnar.
fn cmp_year_lit(batch: &ColumnarBatch, c: usize, op: CmpOp, lit: &Value, out: &mut [bool]) -> bool {
    if batch.kind(c) != ColKind::Date {
        return false;
    }
    let days = batch.dates(c).expect("Date column");
    let nulls = batch.may_have_nulls(c);
    match lit {
        Value::Int(b) => {
            for (i, slot) in out.iter_mut().enumerate() {
                let y = Date::from_days(days[i]).year() as i64;
                *slot = (!nulls || batch.is_valid(c, i)) && op.matches(y.cmp(b));
            }
            true
        }
        Value::Float(b) => {
            let b = nz(*b);
            for (i, slot) in out.iter_mut().enumerate() {
                let y = Date::from_days(days[i]).year() as f64;
                *slot = (!nulls || batch.is_valid(c, i)) && op.matches(y.total_cmp(&b));
            }
            true
        }
        Value::Null => {
            out.fill(false);
            true
        }
        // `year(date)` is an Int; heterogeneous literals order by rank.
        _ => {
            let fill = op.matches(1u8.cmp(&rank(lit)));
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = (!nulls || batch.is_valid(c, i)) && fill;
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_common::Row;

    fn lit(v: Value) -> Expr {
        Expr::Lit(v)
    }
    fn col(c: usize) -> Expr {
        Expr::Col(c)
    }
    fn cmp(l: Expr, op: CmpOp, r: Expr) -> Expr {
        Expr::Cmp(Box::new(l), op, Box::new(r))
    }

    /// Rows covering every column kind plus NULLs; the reference mask comes
    /// from the row-path `eval_bool`, so these tests pin exact agreement.
    fn test_batch() -> (ColumnarBatch, Vec<Row>) {
        let rows: Vec<Row> = vec![
            Row::new(vec![
                Value::Int(5),
                Value::Float(1.5),
                Value::str("apple"),
                Value::Date(Date::from_days(10_000)),
                Value::Int(3),
            ]),
            Row::new(vec![
                Value::Int(-2),
                Value::Float(-0.0),
                Value::str("BANANA"),
                Value::Date(Date::from_days(12_000)),
                Value::Int(-2),
            ]),
            Row::new(vec![
                Value::Null,
                Value::Float(2.0),
                Value::Null,
                Value::Null,
                Value::Int(7),
            ]),
            Row::new(vec![
                Value::Int(9),
                Value::Null,
                Value::str("apricot"),
                Value::Date(Date::from_days(-40)),
                Value::Null,
            ]),
        ];
        (ColumnarBatch::from_rows(&rows), rows)
    }

    fn assert_mask_matches_rows(expr: &Expr) {
        let (batch, rows) = test_batch();
        let mut mask = Vec::new();
        assert!(
            eval_predicate_mask(expr, &batch, &mut mask),
            "expected a columnar kernel for {expr}"
        );
        let want: Vec<bool> = rows
            .iter()
            .map(|r| expr.eval_bool(r).expect("row path evaluates"))
            .collect();
        assert_eq!(mask, want, "mask mismatch for {expr}");
    }

    #[test]
    fn typed_leaves_match_row_path() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_mask_matches_rows(&cmp(col(0), op, lit(Value::Int(3))));
            assert_mask_matches_rows(&cmp(col(0), op, lit(Value::Float(0.0))));
            assert_mask_matches_rows(&cmp(col(1), op, lit(Value::Float(-0.0))));
            assert_mask_matches_rows(&cmp(col(1), op, lit(Value::Int(1))));
            assert_mask_matches_rows(&cmp(col(2), op, lit(Value::str("apricot"))));
            assert_mask_matches_rows(&cmp(col(3), op, lit(Value::Date(Date::from_days(10_000)))));
            // Flipped literal side.
            assert_mask_matches_rows(&cmp(lit(Value::Int(3)), op, col(0)));
            // Col-col, including cross-type numeric.
            assert_mask_matches_rows(&cmp(col(0), op, lit(Value::Null)));
            assert_mask_matches_rows(&cmp(col(0), op, col(4)));
            assert_mask_matches_rows(&cmp(col(0), op, col(1)));
            // Heterogeneous rank comparison (Int column vs Str literal).
            assert_mask_matches_rows(&cmp(col(0), op, lit(Value::str("x"))));
        }
    }

    #[test]
    fn boolean_combinators_match_row_path() {
        let a = cmp(col(0), CmpOp::Gt, lit(Value::Int(0)));
        let b = cmp(col(1), CmpOp::Le, lit(Value::Float(1.5)));
        assert_mask_matches_rows(&Expr::And(Box::new(a.clone()), Box::new(b.clone())));
        assert_mask_matches_rows(&Expr::Or(Box::new(a.clone()), Box::new(b.clone())));
        assert_mask_matches_rows(&Expr::Not(Box::new(a)));
        // NOT over a NULL comparison is true, exactly like the row path.
        assert_mask_matches_rows(&Expr::Not(Box::new(cmp(
            col(0),
            CmpOp::Lt,
            lit(Value::Null),
        ))));
    }

    #[test]
    fn like_and_year_match_row_path() {
        assert_mask_matches_rows(&Expr::Like(Box::new(col(2)), "ap%".into()));
        assert_mask_matches_rows(&Expr::Like(Box::new(col(2)), "%AN%".into()));
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge] {
            assert_mask_matches_rows(&cmp(
                Expr::Year(Box::new(col(3))),
                op,
                lit(Value::Int(1997)),
            ));
        }
    }

    #[test]
    fn unsupported_shapes_fall_back() {
        let (batch, _) = test_batch();
        let mut mask = Vec::new();
        // Arithmetic inside a comparison has no columnar kernel.
        let e = cmp(
            Expr::Arith(
                Box::new(col(0)),
                crate::expr::ArithOp::Add,
                Box::new(lit(Value::Int(1))),
            ),
            CmpOp::Eq,
            lit(Value::Int(6)),
        );
        assert!(!eval_predicate_mask(&e, &batch, &mut mask));
        // LIKE over a non-string column falls back (the row path reports
        // the type error).
        let e = Expr::Like(Box::new(col(0)), "%x%".into());
        assert!(!eval_predicate_mask(&e, &batch, &mut mask));
    }
}
