//! Scalar expression trees and their evaluation.

use crate::like::like_match;
use sip_common::{expr_err, AttrId, Result, Row, Value};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordering.
    #[inline]
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar expression.
///
/// `Attr` references are plan-time names; `Col` references are physical row
/// positions. [`Expr::bind`] rewrites the former into the latter.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A query-global attribute reference (unbound).
    Attr(AttrId),
    /// A physical column position (bound).
    Col(usize),
    /// A literal value.
    Lit(Value),
    /// Comparison producing a boolean (Int 0/1).
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Arithmetic over numerics.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// Logical AND (short-circuit).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (short-circuit).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// SQL LIKE over a string operand and a constant pattern.
    Like(Box<Expr>, String),
    /// Extract the year from a date (TPC-H Q9).
    Year(Box<Expr>),
}

impl Expr {
    /// Attribute reference.
    pub fn attr(a: AttrId) -> Expr {
        Expr::Attr(a)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self op other`.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), op, Box::new(other))
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Eq, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Lt, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Gt, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Ge, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Le, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Mul, Box::new(other))
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Add, Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Sub, Box::new(other))
    }

    /// `self / other`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Div, Box::new(other))
    }

    /// `self LIKE pattern`.
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like(Box::new(self), pattern.into())
    }

    /// `year(self)`.
    pub fn year(self) -> Expr {
        Expr::Year(Box::new(self))
    }

    /// Rewrite `Attr` references into `Col` positions using `layout`, the
    /// attribute at each physical position. Unknown attributes error.
    pub fn bind(&self, layout: &[AttrId]) -> Result<Expr> {
        Ok(match self {
            Expr::Attr(a) => {
                let pos = layout
                    .iter()
                    .position(|x| x == a)
                    .ok_or_else(|| expr_err!("attribute {a} not in layout {layout:?}"))?;
                Expr::Col(pos)
            }
            Expr::Col(_) | Expr::Lit(_) => self.clone(),
            Expr::Cmp(l, op, r) => {
                Expr::Cmp(Box::new(l.bind(layout)?), *op, Box::new(r.bind(layout)?))
            }
            Expr::Arith(l, op, r) => {
                Expr::Arith(Box::new(l.bind(layout)?), *op, Box::new(r.bind(layout)?))
            }
            Expr::And(l, r) => Expr::And(Box::new(l.bind(layout)?), Box::new(r.bind(layout)?)),
            Expr::Or(l, r) => Expr::Or(Box::new(l.bind(layout)?), Box::new(r.bind(layout)?)),
            Expr::Not(e) => Expr::Not(Box::new(e.bind(layout)?)),
            Expr::Like(e, p) => Expr::Like(Box::new(e.bind(layout)?), p.clone()),
            Expr::Year(e) => Expr::Year(Box::new(e.bind(layout)?)),
        })
    }

    /// All attributes referenced (for planning / predicate analysis).
    pub fn attrs(&self) -> Vec<AttrId> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs(&self, out: &mut Vec<AttrId>) {
        match self {
            Expr::Attr(a) => {
                if !out.contains(a) {
                    out.push(*a);
                }
            }
            Expr::Col(_) | Expr::Lit(_) => {}
            Expr::Cmp(l, _, r) | Expr::Arith(l, _, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                l.collect_attrs(out);
                r.collect_attrs(out);
            }
            Expr::Not(e) | Expr::Like(e, _) | Expr::Year(e) => e.collect_attrs(out),
        }
    }

    /// Evaluate against a row. The expression must be bound.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        Ok(match self {
            Expr::Attr(a) => return Err(expr_err!("unbound attribute {a} at eval time")),
            Expr::Col(i) => row.get(*i).clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(l, op, r) => {
                let lv = l.eval(row)?;
                let rv = r.eval(row)?;
                if lv.is_null() || rv.is_null() {
                    // Two-valued NULL handling: comparisons with NULL fail.
                    Value::Int(0)
                } else {
                    Value::Int(op.matches(lv.sql_cmp(&rv)) as i64)
                }
            }
            Expr::Arith(l, op, r) => {
                let lv = l.eval(row)?;
                let rv = r.eval(row)?;
                eval_arith(&lv, *op, &rv)?
            }
            Expr::And(l, r) => {
                if !l.eval(row)?.as_bool()? {
                    Value::Int(0)
                } else {
                    Value::Int(r.eval(row)?.as_bool()? as i64)
                }
            }
            Expr::Or(l, r) => {
                if l.eval(row)?.as_bool()? {
                    Value::Int(1)
                } else {
                    Value::Int(r.eval(row)?.as_bool()? as i64)
                }
            }
            Expr::Not(e) => Value::Int(!e.eval(row)?.as_bool()? as i64),
            Expr::Like(e, p) => {
                let v = e.eval(row)?;
                if v.is_null() {
                    Value::Int(0)
                } else {
                    Value::Int(like_match(v.as_str()?, p) as i64)
                }
            }
            Expr::Year(e) => {
                let v = e.eval(row)?;
                if v.is_null() {
                    Value::Null
                } else {
                    Value::Int(v.as_date()?.year() as i64)
                }
            }
        })
    }

    /// Evaluate as a predicate.
    #[inline]
    pub fn eval_bool(&self, row: &Row) -> Result<bool> {
        self.eval(row)?.as_bool()
    }

    /// Split a conjunctive expression into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Fold a list of predicates into one conjunction (`None` for empty).
    pub fn conjoin(preds: Vec<Expr>) -> Option<Expr> {
        preds.into_iter().reduce(|a, b| a.and(b))
    }
}

fn eval_arith(l: &Value, op: ArithOp, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    return Err(expr_err!("integer division by zero"));
                }
                Value::Int(a / b)
            }
        }),
        _ => {
            let a = l.as_float()?;
            let b = r.as_float()?;
            Ok(match op {
                ArithOp::Add => Value::Float(a + b),
                ArithOp::Sub => Value::Float(a - b),
                ArithOp::Mul => Value::Float(a * b),
                ArithOp::Div => Value::Float(a / b),
            })
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Attr(a) => write!(f, "{a}"),
            Expr::Col(i) => write!(f, "#{i}"),
            Expr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Cmp(l, op, r) => write!(f, "({l} {} {r})", op.symbol()),
            Expr::Arith(l, op, r) => write!(f, "({l} {} {r})", op.symbol()),
            Expr::And(l, r) => write!(f, "({l} AND {r})"),
            Expr::Or(l, r) => write!(f, "({l} OR {r})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Like(e, p) => write!(f, "({e} LIKE '{p}')"),
            Expr::Year(e) => write!(f, "year({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_common::Date;

    fn row(vals: Vec<Value>) -> Row {
        Row::new(vals)
    }

    #[test]
    fn comparison_semantics() {
        let r = row(vec![Value::Int(5), Value::Float(2.5)]);
        assert!(Expr::Col(0).gt(Expr::lit(4i64)).eval_bool(&r).unwrap());
        assert!(Expr::Col(0).ge(Expr::lit(5i64)).eval_bool(&r).unwrap());
        assert!(!Expr::Col(0).lt(Expr::lit(5i64)).eval_bool(&r).unwrap());
        // Cross-type: Int 5 vs Float.
        assert!(Expr::Col(0).gt(Expr::Col(1)).eval_bool(&r).unwrap());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let r = row(vec![Value::Int(10), Value::Float(4.0)]);
        assert_eq!(
            Expr::Col(0).mul(Expr::lit(2i64)).eval(&r).unwrap(),
            Value::Int(20)
        );
        assert_eq!(
            Expr::Col(0).div(Expr::Col(1)).eval(&r).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            Expr::Col(1).add(Expr::lit(0.5f64)).eval(&r).unwrap(),
            Value::Float(4.5)
        );
        assert!(Expr::Col(0).div(Expr::lit(0i64)).eval(&r).is_err());
    }

    #[test]
    fn null_propagation() {
        let r = row(vec![Value::Null, Value::Int(1)]);
        // NULL comparisons are false.
        assert!(!Expr::Col(0).eq(Expr::Col(0)).eval_bool(&r).unwrap());
        // NULL arithmetic is NULL.
        assert!(Expr::Col(0).add(Expr::Col(1)).eval(&r).unwrap().is_null());
    }

    #[test]
    fn boolean_connectives() {
        let r = row(vec![Value::Int(1)]);
        let t = Expr::lit(1i64);
        let fls = Expr::lit(0i64);
        assert!(t.clone().and(t.clone()).eval_bool(&r).unwrap());
        assert!(!t.clone().and(fls.clone()).eval_bool(&r).unwrap());
        assert!(t.clone().or(fls.clone()).eval_bool(&r).unwrap());
        assert!(!fls.clone().or(fls.clone()).eval_bool(&r).unwrap());
        assert!(Expr::Not(Box::new(fls)).eval_bool(&r).unwrap());
    }

    #[test]
    fn like_and_year() {
        let r = row(vec![
            Value::str("SMALL ANODIZED TIN"),
            Value::Date(Date::parse("1995-06-01").unwrap()),
        ]);
        assert!(Expr::Col(0).like("%TIN").eval_bool(&r).unwrap());
        assert!(!Expr::Col(0).like("%BRASS").eval_bool(&r).unwrap());
        assert_eq!(Expr::Col(1).year().eval(&r).unwrap(), Value::Int(1995));
    }

    #[test]
    fn binding_rewrites_attrs() {
        let e = Expr::attr(AttrId(10)).gt(Expr::attr(AttrId(20)));
        let bound = e.bind(&[AttrId(20), AttrId(10)]).unwrap();
        assert_eq!(bound, Expr::Col(1).gt(Expr::Col(0)),);
        // Unknown attribute errors.
        assert!(e.bind(&[AttrId(20)]).is_err());
        // Evaluating unbound errors.
        let r = row(vec![Value::Int(0)]);
        assert!(Expr::attr(AttrId(1)).eval(&r).is_err());
    }

    #[test]
    fn attrs_collects_unique() {
        let e = Expr::attr(AttrId(1))
            .eq(Expr::attr(AttrId(2)))
            .and(Expr::attr(AttrId(1)).gt(Expr::lit(0i64)));
        assert_eq!(e.attrs(), vec![AttrId(1), AttrId(2)]);
    }

    #[test]
    fn conjunct_split_and_join() {
        let e = Expr::lit(1i64).and(Expr::lit(2i64)).and(Expr::lit(3i64));
        assert_eq!(e.conjuncts().len(), 3);
        let rejoined = Expr::conjoin(vec![Expr::lit(1i64), Expr::lit(2i64)]).unwrap();
        assert_eq!(rejoined.conjuncts().len(), 2);
        assert!(Expr::conjoin(vec![]).is_none());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::attr(AttrId(3))
            .mul(Expr::lit(2i64))
            .lt(Expr::attr(AttrId(4)));
        assert_eq!(e.to_string(), "((a3 * 2) < a4)");
        assert_eq!(Expr::lit("AFRICA").to_string(), "'AFRICA'");
    }

    #[test]
    fn flip_preserves_meaning() {
        let r = row(vec![Value::Int(3), Value::Int(7)]);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let a = Expr::Col(0).cmp(op, Expr::Col(1)).eval_bool(&r).unwrap();
            let b = Expr::Col(1)
                .cmp(op.flip(), Expr::Col(0))
                .eval_bool(&r)
                .unwrap();
            assert_eq!(a, b, "{op:?}");
        }
    }
}
