//! SQL `LIKE` pattern matching (`%` = any run, `_` = any single char).

/// Match `text` against SQL LIKE `pattern`.
///
/// Iterative two-pointer algorithm with backtracking to the last `%` — linear
/// in practice, worst-case O(n·m), no allocation. Case-sensitive, as TPC-H
/// patterns are (`'%TIN'`, `'%black%'`).
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last % absorb one more character.
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        assert!(like_match("BRASS", "BRASS"));
        assert!(!like_match("BRASS", "BRAS"));
        assert!(!like_match("BRAS", "BRASS"));
    }

    #[test]
    fn trailing_percent() {
        assert!(like_match("PROMO POLISHED", "PROMO%"));
        assert!(!like_match("STANDARD", "PROMO%"));
    }

    #[test]
    fn leading_percent() {
        assert!(like_match("SMALL ANODIZED TIN", "%TIN"));
        assert!(!like_match("SMALL ANODIZED TIN ", "%TIN"));
        assert!(!like_match("SMALL ANODIZED COPPER", "%TIN"));
    }

    #[test]
    fn infix_percent() {
        assert!(like_match("midnight black metallic", "%black%"));
        assert!(like_match("black", "%black%"));
        assert!(!like_match("blak", "%black%"));
    }

    #[test]
    fn underscore_single_char() {
        assert!(like_match("cat", "c_t"));
        assert!(!like_match("caat", "c_t"));
        assert!(like_match("cat", "___"));
        assert!(!like_match("cat", "____"));
    }

    #[test]
    fn multiple_percents() {
        assert!(like_match("abcXdefYghi", "%X%Y%"));
        assert!(like_match("XY", "%X%Y%"));
        assert!(!like_match("YX", "%X%Y%"));
    }

    #[test]
    fn empty_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(!like_match("a", ""));
        assert!(like_match("anything", "%%"));
    }

    #[test]
    fn backtracking_stress() {
        // Pattern needing repeated % backtracking.
        assert!(like_match("aaaaaaaaab", "%aab"));
        assert!(!like_match("aaaaaaaaac", "%aab"));
        assert!(like_match("mississippi", "%iss%ppi"));
    }

    #[test]
    fn percent_underscore_combo() {
        assert!(like_match("Brand#34", "Brand#__"));
        assert!(like_match("MED CAN", "MED%"));
        assert!(like_match("forest green", "%st_g%"));
    }
}
