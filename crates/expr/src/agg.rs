//! Aggregate functions and their accumulators.
//!
//! The workloads need `SUM`, `MIN`, `AVG` (TPC-H 17), and `COUNT`; `MAX` is
//! included for completeness. Accumulators are small value-typed state
//! machines stored per group inside the hash-aggregation operator.

use sip_common::{expr_err, Result, Value};
use std::fmt;

/// An aggregate function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Sum of a numeric column.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Row count (argument values ignored, NULLs skipped per SQL COUNT(x)).
    Count,
    /// Arithmetic mean.
    Avg,
}

impl AggFunc {
    /// Fresh accumulator.
    pub fn accumulator(self) -> AggAccumulator {
        match self {
            AggFunc::Sum => AggAccumulator::Sum { total: None },
            AggFunc::Min => AggAccumulator::Min { best: None },
            AggFunc::Max => AggAccumulator::Max { best: None },
            AggFunc::Count => AggAccumulator::Count { n: 0 },
            AggFunc::Avg => AggAccumulator::Avg { total: 0.0, n: 0 },
        }
    }

    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
            AggFunc::Avg => "avg",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Running state for one aggregate over one group.
#[derive(Clone, Debug)]
pub enum AggAccumulator {
    /// SUM state. `None` until the first non-NULL input (SQL: empty SUM is
    /// NULL). Int inputs keep integer totals; any Float input widens.
    Sum {
        /// Running total.
        total: Option<Value>,
    },
    /// MIN state.
    Min {
        /// Best so far.
        best: Option<Value>,
    },
    /// MAX state.
    Max {
        /// Best so far.
        best: Option<Value>,
    },
    /// COUNT state.
    Count {
        /// Non-NULL inputs seen.
        n: i64,
    },
    /// AVG state.
    Avg {
        /// Sum of inputs.
        total: f64,
        /// Non-NULL inputs seen.
        n: i64,
    },
}

impl AggAccumulator {
    /// Fold one input value in. NULLs are skipped, per SQL.
    pub fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        match self {
            AggAccumulator::Sum { total } => {
                *total = Some(match total.take() {
                    None => v.clone(),
                    Some(Value::Int(a)) => match v {
                        Value::Int(b) => Value::Int(a + b),
                        _ => Value::Float(a as f64 + v.as_float()?),
                    },
                    Some(Value::Float(a)) => Value::Float(a + v.as_float()?),
                    Some(other) => return Err(expr_err!("SUM over non-numeric state {other:?}")),
                });
            }
            AggAccumulator::Min { best } => {
                if best.as_ref().map(|b| v < b).unwrap_or(true) {
                    *best = Some(v.clone());
                }
            }
            AggAccumulator::Max { best } => {
                if best.as_ref().map(|b| v > b).unwrap_or(true) {
                    *best = Some(v.clone());
                }
            }
            AggAccumulator::Count { n } => *n += 1,
            AggAccumulator::Avg { total, n } => {
                *total += v.as_float()?;
                *n += 1;
            }
        }
        Ok(())
    }

    /// Final value (SQL semantics for empty groups: COUNT → 0, others NULL).
    pub fn finish(&self) -> Value {
        match self {
            AggAccumulator::Sum { total } => total.clone().unwrap_or(Value::Null),
            AggAccumulator::Min { best } | AggAccumulator::Max { best } => {
                best.clone().unwrap_or(Value::Null)
            }
            AggAccumulator::Count { n } => Value::Int(*n),
            AggAccumulator::Avg { total, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(total / *n as f64)
                }
            }
        }
    }

    /// Approximate state footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(f: AggFunc, inputs: &[Value]) -> Value {
        let mut acc = f.accumulator();
        for v in inputs {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn sum_int_stays_int() {
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Int(2), Value::Int(3)]),
            Value::Int(6)
        );
    }

    #[test]
    fn sum_widens_on_float() {
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Float(0.5)]),
            Value::Float(1.5)
        );
    }

    #[test]
    fn min_max_over_mixed_numerics() {
        let vals = [Value::Int(5), Value::Float(2.5), Value::Int(9)];
        assert_eq!(run(AggFunc::Min, &vals), Value::Float(2.5));
        assert_eq!(run(AggFunc::Max, &vals), Value::Int(9));
    }

    #[test]
    fn min_works_on_strings_and_dates() {
        use sip_common::Date;
        assert_eq!(
            run(AggFunc::Min, &[Value::str("b"), Value::str("a")]),
            Value::str("a")
        );
        let d1 = Value::Date(Date::parse("1995-01-01").unwrap());
        let d2 = Value::Date(Date::parse("1994-01-01").unwrap());
        assert_eq!(run(AggFunc::Max, &[d2.clone(), d1.clone()]), d1);
    }

    #[test]
    fn count_skips_nulls() {
        assert_eq!(
            run(AggFunc::Count, &[Value::Int(1), Value::Null, Value::Int(2)]),
            Value::Int(2)
        );
    }

    #[test]
    fn avg_mean() {
        assert_eq!(
            run(AggFunc::Avg, &[Value::Int(1), Value::Int(2), Value::Int(3)]),
            Value::Float(2.0)
        );
    }

    #[test]
    fn empty_group_semantics() {
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
        assert_eq!(run(AggFunc::Min, &[]), Value::Null);
        assert_eq!(run(AggFunc::Count, &[]), Value::Int(0));
        assert_eq!(run(AggFunc::Avg, &[]), Value::Null);
    }

    #[test]
    fn nulls_ignored_everywhere() {
        assert_eq!(run(AggFunc::Sum, &[Value::Null]), Value::Null);
        assert_eq!(
            run(AggFunc::Min, &[Value::Null, Value::Int(4)]),
            Value::Int(4)
        );
        assert_eq!(
            run(AggFunc::Avg, &[Value::Null, Value::Int(4)]),
            Value::Float(4.0)
        );
    }

    #[test]
    fn sum_rejects_strings() {
        let mut acc = AggFunc::Sum.accumulator();
        acc.update(&Value::Int(1)).unwrap();
        assert!(acc.update(&Value::str("x")).is_err());
    }
}
