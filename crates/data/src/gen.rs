//! Deterministic TPC-H-shaped data generation.
//!
//! Mirrors dbgen's schema, key structure, and value distributions closely
//! enough that the paper's predicates (`p_size = 1`, `p_type like '%TIN'`,
//! `r_name = 'AFRICA'`, `p_brand = 'Brand#34'`, ...) select comparable
//! fractions of the data. The scale factor is continuous: `sf = 1.0`
//! corresponds to the classic 1 GB row counts.
//!
//! The skewed mode reproduces the paper's "TPC-D data set ... created by the
//! Microsoft skewed data generator with a Zipfian skew factor z of 0.5"
//! (§VI): foreign-key references and several value columns are drawn from
//! Zipf(z) instead of uniform.

use crate::table::{Catalog, ForeignKey, Table, TableBuilder};
use crate::text;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sip_common::{ColumnarBatch, DataType, Date, Field, Result, Schema, Value};

/// Configuration for one generated data set.
#[derive(Clone, Debug)]
pub struct TpchConfig {
    /// Scale factor; 1.0 = classic TPC-H 1 GB row counts.
    pub scale_factor: f64,
    /// RNG seed — same seed, same data, bit for bit.
    pub seed: u64,
    /// Zipf skew factor; 0.0 = uniform TPC-H, 0.5 = the paper's skewed TPC-D.
    pub zipf_z: f64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale_factor: 0.01,
            seed: 0xDB_00_5E_ED,
            zipf_z: 0.0,
        }
    }
}

impl TpchConfig {
    /// Uniform data at the given scale.
    pub fn uniform(scale_factor: f64) -> Self {
        TpchConfig {
            scale_factor,
            ..Default::default()
        }
    }

    /// Skewed data at the given scale with the paper's z = 0.5.
    pub fn skewed(scale_factor: f64) -> Self {
        TpchConfig {
            scale_factor,
            zipf_z: 0.5,
            ..Default::default()
        }
    }

    fn scaled(&self, base: u64) -> u64 {
        ((base as f64 * self.scale_factor).round() as u64).max(1)
    }
}

/// First order date in the generated range.
pub const ORDER_DATE_MIN: &str = "1992-01-01";
/// Number of days orders span (through 1998-08-02, as in dbgen).
pub const ORDER_DATE_SPAN: i32 = 2405;

/// dbgen's deterministic retail-price formula, shared by `part` generation
/// and `lineitem`'s extended price so the two stay consistent.
pub fn retail_price(partkey: i64) -> f64 {
    (90_000 + ((partkey / 10) % 20_001) + 100 * (partkey % 1_000)) as f64 / 100.0
}

/// Generate the full eight-table catalog.
pub fn generate(config: &TpchConfig) -> Result<Catalog> {
    let mut catalog = Catalog::new();
    let n_parts = config.scaled(200_000) as i64;
    let n_suppliers = config.scaled(10_000) as i64;
    let n_customers = config.scaled(150_000) as i64;
    let n_orders = config.scaled(1_500_000) as i64;

    catalog.add(gen_region()?);
    catalog.add(gen_nation()?);
    catalog.add(gen_supplier(config, n_suppliers)?);
    catalog.add(gen_part(config, n_parts)?);
    catalog.add(gen_partsupp(config, n_parts, n_suppliers)?);
    catalog.add(gen_customer(config, n_customers)?);
    let (orders, lineitem) =
        gen_orders_lineitem(config, n_orders, n_customers, n_parts, n_suppliers)?;
    catalog.add(orders);
    catalog.add(lineitem);
    Ok(catalog)
}

fn rng_for(config: &TpchConfig, stream: u64) -> StdRng {
    // Independent stream per table so adding a table never perturbs others.
    StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(stream))
}

/// Draw a key in `1..=n`, Zipf-skewed if configured. The rank is scattered
/// by a fixed permutation-ish stride so that the popular keys are not simply
/// `1, 2, 3, ...` (matching the skewed generator, which skews value
/// frequencies, not key order).
fn skewed_key(rng: &mut StdRng, zipf: Option<&Zipf>, n: i64) -> i64 {
    match zipf {
        None => rng.gen_range(1..=n),
        Some(z) => {
            let rank = z.sample(rng) as i64; // 1..=n
                                             // Map rank r to key (r * stride) mod n + 1 with stride coprime-ish.
            let stride = (n / 3).max(1) | 1;
            ((rank - 1) * stride).rem_euclid(n) + 1
        }
    }
}

fn gen_region() -> Result<Table> {
    let schema = Schema::new(vec![
        Field::new("r_regionkey", DataType::Int),
        Field::new("r_name", DataType::Str),
        Field::new("r_comment", DataType::Str),
    ]);
    let mut tb = TableBuilder::new(schema);
    for (i, name) in text::REGIONS.iter().enumerate() {
        tb.push(vec![
            Value::Int(i as i64),
            Value::str(*name),
            Value::str("region comment"),
        ]);
    }
    tb.finish("region", vec![0], vec![])
}

fn gen_nation() -> Result<Table> {
    let schema = Schema::new(vec![
        Field::new("n_nationkey", DataType::Int),
        Field::new("n_name", DataType::Str),
        Field::new("n_regionkey", DataType::Int),
        Field::new("n_comment", DataType::Str),
    ]);
    let mut tb = TableBuilder::new(schema);
    for (i, (name, region)) in text::NATIONS.iter().enumerate() {
        tb.push(vec![
            Value::Int(i as i64),
            Value::str(*name),
            Value::Int(*region as i64),
            Value::str("nation comment"),
        ]);
    }
    tb.finish(
        "nation",
        vec![0],
        vec![ForeignKey {
            columns: vec![2],
            parent_table: "region".into(),
        }],
    )
}

fn gen_supplier(config: &TpchConfig, n: i64) -> Result<Table> {
    let mut rng = rng_for(config, 1);
    let schema = Schema::new(vec![
        Field::new("s_suppkey", DataType::Int),
        Field::new("s_name", DataType::Str),
        Field::new("s_address", DataType::Str),
        Field::new("s_nationkey", DataType::Int),
        Field::new("s_phone", DataType::Str),
        Field::new("s_acctbal", DataType::Float),
        Field::new("s_comment", DataType::Str),
    ]);
    let mut tb = TableBuilder::new(schema);
    for k in 1..=n {
        let nation = rng.gen_range(0..25i64);
        tb.push(vec![
            Value::Int(k),
            Value::str(format!("Supplier#{k:09}")),
            Value::str(text::address(&mut rng)),
            Value::Int(nation),
            Value::str(text::phone(&mut rng, nation as usize)),
            Value::Float(rng.gen_range(-999.99..9999.99)),
            Value::str(text::comment(&mut rng)),
        ]);
    }
    tb.finish(
        "supplier",
        vec![0],
        vec![ForeignKey {
            columns: vec![3],
            parent_table: "nation".into(),
        }],
    )
}

fn gen_part(config: &TpchConfig, n: i64) -> Result<Table> {
    let mut rng = rng_for(config, 2);
    let size_zipf = (config.zipf_z > 0.0).then(|| Zipf::new(50, config.zipf_z));
    let schema = Schema::new(vec![
        Field::new("p_partkey", DataType::Int),
        Field::new("p_name", DataType::Str),
        Field::new("p_mfgr", DataType::Str),
        Field::new("p_brand", DataType::Str),
        Field::new("p_type", DataType::Str),
        Field::new("p_size", DataType::Int),
        Field::new("p_container", DataType::Str),
        Field::new("p_retailprice", DataType::Float),
        Field::new("p_comment", DataType::Str),
    ]);
    let mut tb = TableBuilder::new(schema);
    for k in 1..=n {
        let size = match &size_zipf {
            Some(z) => z.sample(&mut rng) as i64,
            None => rng.gen_range(1..=50),
        };
        tb.push(vec![
            Value::Int(k),
            Value::str(text::part_name(&mut rng)),
            Value::str(format!("Manufacturer#{}", rng.gen_range(1..=5))),
            Value::str(text::brand(&mut rng)),
            Value::str(text::part_type(&mut rng)),
            Value::Int(size),
            Value::str(text::container(&mut rng)),
            Value::Float(retail_price(k)),
            Value::str(text::comment(&mut rng)),
        ]);
    }
    tb.finish("part", vec![0], vec![])
}

fn gen_partsupp(config: &TpchConfig, n_parts: i64, n_suppliers: i64) -> Result<Table> {
    let mut rng = rng_for(config, 3);
    let schema = Schema::new(vec![
        Field::new("ps_partkey", DataType::Int),
        Field::new("ps_suppkey", DataType::Int),
        Field::new("ps_availqty", DataType::Int),
        Field::new("ps_supplycost", DataType::Float),
        Field::new("ps_comment", DataType::Str),
    ]);
    let qty_zipf = (config.zipf_z > 0.0).then(|| Zipf::new(9_999, config.zipf_z));
    let mut tb = TableBuilder::new(schema);
    for p in 1..=n_parts {
        // dbgen: each part is stocked by 4 suppliers at spread positions.
        for i in 0..4i64 {
            let s = (p + i * (n_suppliers / 4 + 1)) % n_suppliers + 1;
            let qty = match &qty_zipf {
                Some(z) => z.sample(&mut rng) as i64,
                None => rng.gen_range(1..=9_999),
            };
            tb.push(vec![
                Value::Int(p),
                Value::Int(s),
                Value::Int(qty),
                Value::Float(rng.gen_range(1.0..1000.0)),
                Value::str(text::comment(&mut rng)),
            ]);
        }
    }
    tb.finish(
        "partsupp",
        vec![0, 1],
        vec![
            ForeignKey {
                columns: vec![0],
                parent_table: "part".into(),
            },
            ForeignKey {
                columns: vec![1],
                parent_table: "supplier".into(),
            },
        ],
    )
}

fn gen_customer(config: &TpchConfig, n: i64) -> Result<Table> {
    let mut rng = rng_for(config, 4);
    let schema = Schema::new(vec![
        Field::new("c_custkey", DataType::Int),
        Field::new("c_name", DataType::Str),
        Field::new("c_address", DataType::Str),
        Field::new("c_nationkey", DataType::Int),
        Field::new("c_phone", DataType::Str),
        Field::new("c_acctbal", DataType::Float),
        Field::new("c_mktsegment", DataType::Str),
        Field::new("c_comment", DataType::Str),
    ]);
    let mut tb = TableBuilder::new(schema);
    for k in 1..=n {
        let nation = rng.gen_range(0..25i64);
        tb.push(vec![
            Value::Int(k),
            Value::str(format!("Customer#{k:09}")),
            Value::str(text::address(&mut rng)),
            Value::Int(nation),
            Value::str(text::phone(&mut rng, nation as usize)),
            Value::Float(rng.gen_range(-999.99..9999.99)),
            Value::str(text::SEGMENTS[rng.gen_range(0..text::SEGMENTS.len())]),
            Value::str(text::comment(&mut rng)),
        ]);
    }
    tb.finish(
        "customer",
        vec![0],
        vec![ForeignKey {
            columns: vec![3],
            parent_table: "nation".into(),
        }],
    )
}

/// The `orders` schema.
pub fn orders_schema() -> Schema {
    Schema::new(vec![
        Field::new("o_orderkey", DataType::Int),
        Field::new("o_custkey", DataType::Int),
        Field::new("o_orderstatus", DataType::Str),
        Field::new("o_totalprice", DataType::Float),
        Field::new("o_orderdate", DataType::Date),
        Field::new("o_orderpriority", DataType::Str),
        Field::new("o_clerk", DataType::Str),
        Field::new("o_shippriority", DataType::Int),
        Field::new("o_comment", DataType::Str),
    ])
}

/// The `lineitem` schema.
pub fn lineitem_schema() -> Schema {
    Schema::new(vec![
        Field::new("l_orderkey", DataType::Int),
        Field::new("l_partkey", DataType::Int),
        Field::new("l_suppkey", DataType::Int),
        Field::new("l_linenumber", DataType::Int),
        Field::new("l_quantity", DataType::Int),
        Field::new("l_extendedprice", DataType::Float),
        Field::new("l_discount", DataType::Float),
        Field::new("l_tax", DataType::Float),
        Field::new("l_returnflag", DataType::Str),
        Field::new("l_linestatus", DataType::Str),
        Field::new("l_shipdate", DataType::Date),
        Field::new("l_commitdate", DataType::Date),
        Field::new("l_receiptdate", DataType::Date),
        Field::new("l_shipinstruct", DataType::Str),
        Field::new("l_shipmode", DataType::Str),
        Field::new("l_comment", DataType::Str),
    ])
}

/// The coupled `orders` + `lineitem` record generator: one RNG stream,
/// one order (with 1–7 lines) per call, identical draw order whether the
/// records are materialized into a catalog or streamed in chunks — so the
/// streaming path produces bit-identical data to [`generate`].
struct OrderGen {
    rng: StdRng,
    base_date: Date,
    n_customers: i64,
    n_parts: i64,
    n_suppliers: i64,
    cust_zipf: Option<Zipf>,
    part_zipf: Option<Zipf>,
    supp_zipf: Option<Zipf>,
    qty_zipf: Option<Zipf>,
}

impl OrderGen {
    fn new(
        config: &TpchConfig,
        n_customers: i64,
        n_parts: i64,
        n_suppliers: i64,
    ) -> Result<OrderGen> {
        Ok(OrderGen {
            rng: rng_for(config, 5),
            base_date: Date::parse(ORDER_DATE_MIN)?,
            n_customers,
            n_parts,
            n_suppliers,
            cust_zipf: (config.zipf_z > 0.0).then(|| Zipf::new(n_customers as u64, config.zipf_z)),
            part_zipf: (config.zipf_z > 0.0).then(|| Zipf::new(n_parts as u64, config.zipf_z)),
            supp_zipf: (config.zipf_z > 0.0).then(|| Zipf::new(n_suppliers as u64, config.zipf_z)),
            qty_zipf: (config.zipf_z > 0.0).then(|| Zipf::new(50, config.zipf_z)),
        })
    }

    /// Generate order `ok`, passing each lineitem record to `line` and
    /// returning the order record.
    fn next_order(&mut self, ok: i64, mut line: impl FnMut(Vec<Value>)) -> Vec<Value> {
        let rng = &mut self.rng;
        let custkey = match &self.cust_zipf {
            Some(_) => skewed_key(rng, self.cust_zipf.as_ref(), self.n_customers),
            None => rng.gen_range(1..=self.n_customers),
        };
        let odate = self.base_date.plus_days(rng.gen_range(0..ORDER_DATE_SPAN));
        let n_lines = rng.gen_range(1..=7);
        let mut total = 0.0f64;
        for ln in 1..=n_lines {
            let partkey = skewed_key(rng, self.part_zipf.as_ref(), self.n_parts);
            let suppkey = skewed_key(rng, self.supp_zipf.as_ref(), self.n_suppliers);
            let quantity = match &self.qty_zipf {
                Some(z) => z.sample(rng) as i64,
                None => rng.gen_range(1..=50),
            };
            let eprice = quantity as f64 * retail_price(partkey);
            let discount = rng.gen_range(0..=10) as f64 / 100.0;
            let tax = rng.gen_range(0..=8) as f64 / 100.0;
            let shipdate = odate.plus_days(rng.gen_range(1..=121));
            let commitdate = odate.plus_days(rng.gen_range(30..=90));
            let receiptdate = shipdate.plus_days(rng.gen_range(1..=30));
            total += eprice * (1.0 - discount) * (1.0 + tax);
            line(vec![
                Value::Int(ok),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(ln),
                Value::Int(quantity),
                Value::Float(eprice),
                Value::Float(discount),
                Value::Float(tax),
                Value::str(if rng.gen_bool(0.25) { "R" } else { "N" }),
                Value::str(if shipdate.days() > self.base_date.days() + 1200 {
                    "O"
                } else {
                    "F"
                }),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::str("DELIVER IN PERSON"),
                Value::str(text::SHIP_MODES[rng.gen_range(0..text::SHIP_MODES.len())]),
                Value::str(text::comment(rng)),
            ]);
        }
        vec![
            Value::Int(ok),
            Value::Int(custkey),
            Value::str(if rng.gen_bool(0.5) { "F" } else { "O" }),
            Value::Float(total),
            Value::Date(odate),
            Value::str(text::PRIORITIES[rng.gen_range(0..text::PRIORITIES.len())]),
            Value::str(format!("Clerk#{:09}", rng.gen_range(1..=1000))),
            Value::Int(0),
            Value::str(text::comment(rng)),
        ]
    }
}

fn lineitem_foreign_keys() -> Vec<ForeignKey> {
    vec![
        ForeignKey {
            columns: vec![0],
            parent_table: "orders".into(),
        },
        ForeignKey {
            columns: vec![1],
            parent_table: "part".into(),
        },
        ForeignKey {
            columns: vec![2],
            parent_table: "supplier".into(),
        },
    ]
}

fn gen_orders_lineitem(
    config: &TpchConfig,
    n_orders: i64,
    n_customers: i64,
    n_parts: i64,
    n_suppliers: i64,
) -> Result<(Table, Table)> {
    let mut gen = OrderGen::new(config, n_customers, n_parts, n_suppliers)?;
    let mut orders_tb = TableBuilder::new(orders_schema());
    let mut lines_tb = TableBuilder::new(lineitem_schema());
    for ok in 1..=n_orders {
        let order = gen.next_order(ok, |lv| lines_tb.push(lv));
        orders_tb.push(order);
    }
    let orders = orders_tb.finish(
        "orders",
        vec![0],
        vec![ForeignKey {
            columns: vec![1],
            parent_table: "customer".into(),
        }],
    )?;
    let lineitem = lines_tb.finish("lineitem", vec![0, 3], lineitem_foreign_keys())?;
    Ok((orders, lineitem))
}

/// Stream the `lineitem` table as columnar chunks of ~`chunk_rows` rows at
/// constant memory: records are generated straight into per-chunk column
/// builders and handed to `sink`, with nothing retained between chunks.
/// The paired `orders` records are computed (the RNG stream is shared) and
/// discarded.
///
/// Chunks flush at order boundaries, so a chunk can run up to 6 rows past
/// `chunk_rows`. The concatenation of all chunks is bit-identical to the
/// `lineitem` table [`generate`] builds for the same config — pinning that
/// a scale-factor sweep through this path measures the same data the
/// in-memory catalog would hold.
pub fn stream_lineitem(
    config: &TpchConfig,
    chunk_rows: usize,
    sink: &mut dyn FnMut(ColumnarBatch) -> Result<()>,
) -> Result<()> {
    assert!(chunk_rows > 0, "chunk_rows must be positive");
    let n_customers = config.scaled(150_000) as i64;
    let n_parts = config.scaled(200_000) as i64;
    let n_suppliers = config.scaled(10_000) as i64;
    let n_orders = config.scaled(1_500_000) as i64;
    let mut gen = OrderGen::new(config, n_customers, n_parts, n_suppliers)?;
    let mut tb = TableBuilder::new(lineitem_schema());
    for ok in 1..=n_orders {
        gen.next_order(ok, |lv| tb.push(lv));
        if tb.len() >= chunk_rows {
            sink(tb.take_batch())?;
        }
    }
    if !tb.is_empty() {
        sink(tb.take_batch())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Catalog {
        generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 1,
            zipf_z: 0.0,
        })
        .unwrap()
    }

    #[test]
    fn all_eight_tables_present() {
        let c = tiny();
        for t in [
            "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
        ] {
            assert!(c.get(t).is_ok(), "missing {t}");
        }
    }

    #[test]
    fn row_counts_scale() {
        let c = tiny();
        assert_eq!(c.get("region").unwrap().len(), 5);
        assert_eq!(c.get("nation").unwrap().len(), 25);
        assert_eq!(c.get("part").unwrap().len(), 400);
        assert_eq!(c.get("partsupp").unwrap().len(), 1600);
        assert_eq!(c.get("supplier").unwrap().len(), 20);
        let orders = c.get("orders").unwrap().len();
        assert_eq!(orders, 3000);
        let lines = c.get("lineitem").unwrap().len();
        assert!(lines >= orders && lines <= orders * 7);
    }

    #[test]
    fn referential_integrity_lineitem() {
        let c = tiny();
        let n_parts = c.get("part").unwrap().len() as i64;
        let n_supp = c.get("supplier").unwrap().len() as i64;
        let n_orders = c.get("orders").unwrap().len() as i64;
        for row in c.get("lineitem").unwrap().rows() {
            let ok = row.get(0).as_int().unwrap();
            let pk = row.get(1).as_int().unwrap();
            let sk = row.get(2).as_int().unwrap();
            assert!((1..=n_orders).contains(&ok));
            assert!((1..=n_parts).contains(&pk));
            assert!((1..=n_supp).contains(&sk));
        }
    }

    #[test]
    fn referential_integrity_partsupp() {
        let c = tiny();
        let n_parts = c.get("part").unwrap().len() as i64;
        let n_supp = c.get("supplier").unwrap().len() as i64;
        let mut seen = std::collections::HashSet::new();
        for row in c.get("partsupp").unwrap().rows() {
            let p = row.get(0).as_int().unwrap();
            let s = row.get(1).as_int().unwrap();
            assert!((1..=n_parts).contains(&p));
            assert!((1..=n_supp).contains(&s));
            assert!(seen.insert((p, s)), "duplicate partsupp key ({p},{s})");
        }
    }

    #[test]
    fn receipt_after_ship_after_order() {
        let c = tiny();
        let orders = c.get("orders").unwrap();
        let odates: std::collections::HashMap<i64, Date> = orders
            .rows()
            .iter()
            .map(|r| (r.get(0).as_int().unwrap(), r.get(4).as_date().unwrap()))
            .collect();
        for row in c.get("lineitem").unwrap().rows() {
            let ok = row.get(0).as_int().unwrap();
            let ship = row.get(10).as_date().unwrap();
            let receipt = row.get(12).as_date().unwrap();
            assert!(ship > odates[&ok]);
            assert!(receipt > ship);
        }
    }

    #[test]
    fn determinism() {
        let a = tiny();
        let b = tiny();
        for t in ["part", "lineitem"] {
            let ta = a.get(t).unwrap();
            let tb = b.get(t).unwrap();
            assert_eq!(ta.rows(), tb.rows(), "{t} differs between runs");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 1,
            zipf_z: 0.0,
        })
        .unwrap();
        let b = generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 2,
            zipf_z: 0.0,
        })
        .unwrap();
        assert_ne!(a.get("part").unwrap().rows(), b.get("part").unwrap().rows());
    }

    #[test]
    fn skew_concentrates_lineitem_partkeys() {
        let uniform = generate(&TpchConfig {
            scale_factor: 0.005,
            seed: 3,
            zipf_z: 0.0,
        })
        .unwrap();
        let skewed = generate(&TpchConfig {
            scale_factor: 0.005,
            seed: 3,
            zipf_z: 0.8,
        })
        .unwrap();
        let top_share = |cat: &Catalog| {
            let mut counts: std::collections::HashMap<i64, usize> = Default::default();
            for r in cat.get("lineitem").unwrap().rows() {
                *counts.entry(r.get(1).as_int().unwrap()).or_default() += 1;
            }
            let total: usize = counts.values().sum();
            let mut v: Vec<usize> = counts.values().copied().collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.iter().take(10).sum::<usize>() as f64 / total as f64
        };
        assert!(
            top_share(&skewed) > top_share(&uniform) * 1.5,
            "skewed {} vs uniform {}",
            top_share(&skewed),
            top_share(&uniform)
        );
    }

    #[test]
    fn streamed_lineitem_matches_generated_table() {
        let config = TpchConfig {
            scale_factor: 0.002,
            seed: 1,
            zipf_z: 0.0,
        };
        let table = generate(&config).unwrap();
        let want = table.get("lineitem").unwrap();
        for chunk_rows in [100usize, 1024, 1 << 20] {
            let mut streamed = Vec::new();
            stream_lineitem(&config, chunk_rows, &mut |batch| {
                assert!(
                    batch.len() <= chunk_rows + 6,
                    "chunk of {} rows overshoots {} by more than one order",
                    batch.len(),
                    chunk_rows
                );
                streamed.extend(batch.to_rows());
                Ok(())
            })
            .unwrap();
            assert_eq!(
                streamed,
                want.rows(),
                "streamed lineitem (chunk {chunk_rows}) differs from the catalog table"
            );
        }
    }

    #[test]
    fn retail_price_formula_in_range() {
        for k in [1i64, 10, 999, 20_000] {
            let p = retail_price(k);
            assert!((900.0..=2101.0).contains(&p), "price({k}) = {p}");
        }
    }

    #[test]
    fn q17_predicates_select_nonempty() {
        // Brand + container predicates of TPC-H 17 must match some parts.
        let c = generate(&TpchConfig {
            scale_factor: 0.02,
            seed: 7,
            zipf_z: 0.0,
        })
        .unwrap();
        let parts = c.get("part").unwrap();
        let hits = parts
            .rows()
            .iter()
            .filter(|r| {
                r.get(3).as_str().unwrap() == "Brand#34" && r.get(6).as_str().unwrap() == "MED CAN"
            })
            .count();
        assert!(hits > 0, "Brand#34/MED CAN selects nothing");
    }
}
