//! In-memory tables, statistics, and the catalog.
//!
//! The optimizer's cost model (paper §V-A) "does not require histograms:
//! instead, it relies on cardinality estimates and information about keys and
//! foreign keys". [`TableMeta`] carries exactly that: row counts, primary
//! keys, foreign keys, and per-column distinct/min/max statistics computed at
//! load time.

use sip_common::{ColKind, ColumnarBatch, DigestBuffer, Result, Row, Schema, SipError, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Heavy hitters retained per column: enough for any realistic hot-key
/// threshold (a key must hold ≥ `hot_factor/dop` of the rows to salt, so
/// at most `dop/hot_factor` keys qualify), small enough to keep stats
/// cheap.
const HOT_STATS_KEYS: usize = 64;

/// Per-column statistics (exact, computed over generated data).
#[derive(Clone, Debug)]
pub struct ColumnStats {
    /// Number of distinct non-NULL values.
    pub distinct: u64,
    /// Minimum value (None for all-NULL / empty).
    pub min: Option<Value>,
    /// Maximum value.
    pub max: Option<Value>,
    /// Occurrences of the most frequent non-NULL value — the exact
    /// heavy-hitter statistic skew-aware planning reads: `max_freq /
    /// row_count` is the hot fraction a hash partitioning cannot split.
    pub max_freq: u64,
    /// The column's heaviest values as `(key digest, occurrences)`,
    /// heaviest first, capped at [`HOT_STATS_KEYS`] (ties broken by
    /// digest for determinism). The digests match `Row::key_hash` over
    /// the single column, so the salt planner reads its hot set straight
    /// from here instead of re-counting the table.
    pub hot: Vec<(u64, u64)>,
}

/// A foreign-key reference: `columns` of this table reference the primary
/// key of `parent_table`.
#[derive(Clone, Debug)]
pub struct ForeignKey {
    /// Referencing column positions in this table.
    pub columns: Vec<usize>,
    /// Referenced table name.
    pub parent_table: String,
}

/// Static + statistical metadata about a table.
#[derive(Clone, Debug)]
pub struct TableMeta {
    /// Table name (`lineitem`, `partsupp`, ...).
    pub name: String,
    /// Column layout.
    pub schema: Schema,
    /// Primary-key column positions (empty = no declared key).
    pub primary_key: Vec<usize>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
    /// Row count.
    pub row_count: u64,
    /// Per-column stats, parallel to the schema.
    pub column_stats: Vec<ColumnStats>,
}

/// An immutable in-memory table.
///
/// Stored columnar ([`ColumnarBatch`]) — scans slice the typed columns
/// zero-copy. A row-shaped view is materialized lazily (once) for the
/// consumers that are row seams by design (the oracle, the remote-feed
/// fallback, row-based tests).
#[derive(Clone, Debug)]
pub struct Table {
    meta: TableMeta,
    columns: ColumnarBatch,
    rows: OnceLock<Arc<[Row]>>,
}

impl Table {
    /// Build a table from rows, computing exact column statistics. The
    /// given rows seed the lazy row view, so callers that constructed rows
    /// anyway pay no second materialization.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        primary_key: Vec<usize>,
        foreign_keys: Vec<ForeignKey>,
        rows: Vec<Row>,
    ) -> Result<Table> {
        let name = name.into();
        for row in rows.iter().take(16) {
            schema
                .check_row(row.values())
                .map_err(|e| SipError::Data(format!("table {name}: {e}")))?;
        }
        let types: Vec<_> = schema.fields().iter().map(|f| f.dtype).collect();
        let columns = ColumnarBatch::from_rows_typed(&rows, &types);
        let table = Table::from_columns(name, schema, primary_key, foreign_keys, columns)?;
        let _ = table.rows.set(rows.into());
        Ok(table)
    }

    /// Build a table directly from finished columns (no row materialization
    /// — the constructor the streaming generator uses). Statistics are
    /// computed columnar.
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        primary_key: Vec<usize>,
        foreign_keys: Vec<ForeignKey>,
        columns: ColumnarBatch,
    ) -> Result<Table> {
        let name = name.into();
        if columns.n_cols() != schema.len() && !(columns.is_empty() && columns.n_cols() == 0) {
            return Err(SipError::Data(format!(
                "table {name}: {} columns for a {}-column schema",
                columns.n_cols(),
                schema.len()
            )));
        }
        let column_stats = compute_stats(&schema, &columns);
        let meta = TableMeta {
            name,
            schema,
            primary_key,
            foreign_keys,
            row_count: columns.len() as u64,
            column_stats,
        };
        Ok(Table {
            meta,
            columns,
            rows: OnceLock::new(),
        })
    }

    /// Metadata.
    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// Schema.
    pub fn schema(&self) -> &Schema {
        &self.meta.schema
    }

    /// The columnar storage — the primary representation scans read.
    pub fn columns(&self) -> &ColumnarBatch {
        &self.columns
    }

    /// All rows, materialized lazily on first call and cached.
    pub fn rows(&self) -> &[Row] {
        self.rows.get_or_init(|| self.columns.to_rows().into())
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.columns.len() == 0
    }

    /// Distinct count for a column (1 if unknown/empty, keeping division
    /// safe in selectivity formulas).
    pub fn distinct(&self, col: usize) -> u64 {
        self.meta
            .column_stats
            .get(col)
            .map(|s| s.distinct.max(1))
            .unwrap_or(1)
    }

    /// Fraction of rows holding the column's most frequent value — the hot
    /// share a hash partitioning cannot split below one worker. 0 for
    /// unknown columns or empty tables.
    pub fn hot_fraction(&self, col: usize) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.meta
            .column_stats
            .get(col)
            .map(|s| s.max_freq as f64 / self.len() as f64)
            .unwrap_or(0.0)
    }
}

/// Normalize `-0.0` to `0.0`, matching `Value::sql_cmp` float ordering.
#[inline]
fn nz(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

/// The non-NULL min/max of column `c` as view-relative row indices,
/// scanned over the typed slices (no per-value clones). Equal values keep
/// the first occurrence, as the old row-based scan did.
fn min_max_indices(batch: &ColumnarBatch, c: usize) -> (Option<usize>, Option<usize>) {
    let nulls = batch.may_have_nulls(c);
    let mut mn: Option<usize> = None;
    let mut mx: Option<usize> = None;
    macro_rules! scan {
        ($get:expr, $lt:expr) => {
            for i in 0..batch.len() {
                if nulls && !batch.is_valid(c, i) {
                    continue;
                }
                let v = $get(i);
                match mn {
                    None => {
                        mn = Some(i);
                        mx = Some(i);
                    }
                    Some(m) => {
                        if $lt(&v, &$get(m)) {
                            mn = Some(i);
                        }
                        if $lt(&$get(mx.unwrap()), &v) {
                            mx = Some(i);
                        }
                    }
                }
            }
        };
    }
    match batch.kind(c) {
        ColKind::Int => {
            let d = batch.ints(c).expect("Int column");
            scan!(|i: usize| d[i], |a: &i64, b: &i64| a < b);
        }
        ColKind::Float => {
            let d = batch.floats(c).expect("Float column");
            scan!(|i: usize| d[i], |a: &f64, b: &f64| nz(*a)
                .total_cmp(&nz(*b))
                == std::cmp::Ordering::Less);
        }
        ColKind::Date => {
            let d = batch.dates(c).expect("Date column");
            scan!(|i: usize| d[i], |a: &i32, b: &i32| a < b);
        }
        ColKind::Str => {
            scan!(
                |i: usize| batch.str_at(c, i).expect("valid string slot"),
                |a: &&str, b: &&str| a < b
            );
        }
        ColKind::Mixed => {
            // NULL-only or heterogeneous columns: per-value compare
            // (dictionary strings clone as `Arc` bumps).
            scan!(|i: usize| batch.value_at(c, i), |a: &Value, b: &Value| a
                .sql_cmp(b)
                == std::cmp::Ordering::Less);
        }
    }
    (mn, mx)
}

fn compute_stats(schema: &Schema, columns: &ColumnarBatch) -> Vec<ColumnStats> {
    // One vectorized digest pass per column; single-column digests equal
    // `Row::key_hash` over that column, which is exactly what the salt
    // planner's hot set must match.
    let mut digests = DigestBuffer::default();
    let mut stats = Vec::with_capacity(schema.len());
    for c in 0..schema.len() {
        digests.compute_cols(columns, &[c]);
        let mut counts: sip_common::FxHashMap<u64, u64> = Default::default();
        for (i, &d) in digests.digests().iter().enumerate() {
            if digests.is_null_key(i) {
                continue;
            }
            *counts.entry(d).or_default() += 1;
        }
        let (mn, mx) = min_max_indices(columns, c);
        stats.push((
            counts,
            mn.map(|i| columns.value_at(c, i)),
            mx.map(|i| columns.value_at(c, i)),
        ));
    }
    stats
        .into_iter()
        .map(|(counts, min, max)| {
            let mut hot: Vec<(u64, u64)> = counts.iter().map(|(&d, &c)| (d, c)).collect();
            let heaviest_first = |a: &(u64, u64), b: &(u64, u64)| (b.1, a.0).cmp(&(a.1, b.0));
            // Keep only the top slots before sorting: a high-cardinality
            // column (unique keys) should not pay an O(D log D) sort for
            // 64 survivors.
            if hot.len() > HOT_STATS_KEYS {
                hot.select_nth_unstable_by(HOT_STATS_KEYS - 1, heaviest_first);
                hot.truncate(HOT_STATS_KEYS);
            }
            hot.sort_by(heaviest_first);
            ColumnStats {
                distinct: counts.len() as u64,
                max_freq: hot.first().map(|&(_, c)| c).unwrap_or(0),
                hot,
                min,
                max,
            }
        })
        .collect()
}

/// Incremental columnar table construction: one typed [`ColumnBuilder`]
/// per schema field, fed record by record, finished into a [`Table`]
/// without ever materializing a `Vec<Row>`. The data generator appends
/// through this, so generation memory is the (dictionary-compressed)
/// columns themselves, not a row-shaped intermediate.
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    builders: Vec<sip_common::ColumnBuilder>,
    len: usize,
}

impl TableBuilder {
    /// Builders pre-typed from `schema`.
    pub fn new(schema: Schema) -> TableBuilder {
        let builders = schema
            .fields()
            .iter()
            .map(|f| sip_common::ColumnBuilder::with_type(f.dtype))
            .collect();
        TableBuilder {
            schema,
            builders,
            len: 0,
        }
    }

    /// Append one record. `values` must match the schema width.
    pub fn push(&mut self, values: Vec<Value>) {
        assert_eq!(
            values.len(),
            self.builders.len(),
            "record width mismatches schema"
        );
        for (b, v) in self.builders.iter_mut().zip(values.iter()) {
            b.push(v);
        }
        self.len += 1;
    }

    /// Records appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Finish the columns into a [`ColumnarBatch`], leaving the builder
    /// empty and retyped — the chunk-flush primitive for streaming
    /// generation.
    pub fn take_batch(&mut self) -> ColumnarBatch {
        let fresh: Vec<sip_common::ColumnBuilder> = self
            .schema
            .fields()
            .iter()
            .map(|f| sip_common::ColumnBuilder::with_type(f.dtype))
            .collect();
        let done = std::mem::replace(&mut self.builders, fresh);
        self.len = 0;
        ColumnarBatch::from_columns(done.into_iter().map(|b| b.finish()).collect())
    }

    /// Finish into a table with columnar statistics.
    pub fn finish(
        mut self,
        name: impl Into<String>,
        primary_key: Vec<usize>,
        foreign_keys: Vec<ForeignKey>,
    ) -> Result<Table> {
        let columns = self.take_batch();
        Table::from_columns(name, self.schema, primary_key, foreign_keys, columns)
    }
}

/// A named collection of tables — what a site serves.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table (replacing any previous one of the same name).
    pub fn add(&mut self, table: Table) {
        self.tables
            .insert(table.name().to_string(), Arc::new(table));
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| SipError::Data(format!("table {name:?} not in catalog")))
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Total rows across tables.
    pub fn total_rows(&self) -> u64 {
        self.tables.values().map(|t| t.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_common::{DataType, Field};

    fn small_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Str),
        ]);
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::str("a")]),
            Row::new(vec![Value::Int(2), Value::str("b")]),
            Row::new(vec![Value::Int(3), Value::str("a")]),
        ];
        Table::new("t", schema, vec![0], vec![], rows).unwrap()
    }

    #[test]
    fn stats_are_exact() {
        let t = small_table();
        assert_eq!(t.meta().row_count, 3);
        assert_eq!(t.distinct(0), 3);
        assert_eq!(t.distinct(1), 2);
        assert_eq!(t.meta().column_stats[0].min, Some(Value::Int(1)));
        assert_eq!(t.meta().column_stats[0].max, Some(Value::Int(3)));
        // max_freq: the key column is unique, "a" repeats in the value
        // column.
        assert_eq!(t.meta().column_stats[0].max_freq, 1);
        assert_eq!(t.meta().column_stats[1].max_freq, 2);
        assert!((t.hot_fraction(0) - 1.0 / 3.0).abs() < 1e-9);
        assert!((t.hot_fraction(1) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.hot_fraction(99), 0.0);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let rows = vec![Row::new(vec![Value::str("oops")])];
        assert!(Table::new("bad", schema, vec![], vec![], rows).is_err());
    }

    #[test]
    fn catalog_lookup() {
        let mut c = Catalog::new();
        c.add(small_table());
        assert!(c.get("t").is_ok());
        assert!(c.get("nope").is_err());
        assert_eq!(c.table_names(), vec!["t"]);
        assert_eq!(c.total_rows(), 3);
    }

    #[test]
    fn distinct_of_unknown_column_is_one() {
        let t = small_table();
        assert_eq!(t.distinct(99), 1);
    }

    #[test]
    fn empty_table_stats() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let t = Table::new("e", schema, vec![0], vec![], vec![]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.distinct(0), 1);
        assert_eq!(t.meta().column_stats[0].min, None);
    }

    #[test]
    fn nulls_excluded_from_stats() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let rows = vec![Row::new(vec![Value::Null]), Row::new(vec![Value::Int(5)])];
        let t = Table::new("n", schema, vec![], vec![], rows).unwrap();
        assert_eq!(t.distinct(0), 1);
        assert_eq!(t.meta().column_stats[0].min, Some(Value::Int(5)));
    }
}
