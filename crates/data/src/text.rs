//! TPC-H text pools: the word lists dbgen composes names and categorical
//! columns from. Deterministic, allocation-light helpers used by the
//! generators.

use rand::Rng;

/// The five TPC-H regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nations with their region index.
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("VIETNAM", 2),
    ("CHINA", 2),
];

/// p_type syllables — 6 × 5 × 5 = 150 distinct types like
/// `"STANDARD ANODIZED TIN"`. The last syllable is what `%TIN` / `%BRASS`
/// predicates select on.
pub const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Second p_type syllable.
pub const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Third p_type syllable (the metal).
pub const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// p_container syllables — 5 × 8 = 40 containers like `"MED CAN"`.
pub const CONTAINER_S1: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
/// Second container syllable.
pub const CONTAINER_S2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Colour words used in p_name (dbgen uses 92; this 40-word pool keeps the
/// `p_name like '%black%'` selectivity in the same regime).
pub const COLORS: [&str; 40] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
];

/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// Short comment fragments (full dbgen comments average ~50 bytes; these are
/// shorter but preserve the "wide string column" shape).
pub const COMMENT_WORDS: [&str; 16] = [
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "deposits",
    "requests",
    "packages",
    "accounts",
    "theodolites",
    "pinto beans",
    "foxes",
    "ideas",
    "dependencies",
    "instructions",
    "platelets",
];

/// A p_type drawn uniformly (or by explicit indices).
pub fn part_type(rng: &mut impl Rng) -> String {
    format!(
        "{} {} {}",
        TYPE_S1[rng.gen_range(0..TYPE_S1.len())],
        TYPE_S2[rng.gen_range(0..TYPE_S2.len())],
        TYPE_S3[rng.gen_range(0..TYPE_S3.len())]
    )
}

/// A p_container drawn uniformly.
pub fn container(rng: &mut impl Rng) -> String {
    format!(
        "{} {}",
        CONTAINER_S1[rng.gen_range(0..CONTAINER_S1.len())],
        CONTAINER_S2[rng.gen_range(0..CONTAINER_S2.len())]
    )
}

/// A brand `Brand#MN`, M,N ∈ 1..=5.
pub fn brand(rng: &mut impl Rng) -> String {
    format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5))
}

/// A part name: five colour words, dbgen-style.
pub fn part_name(rng: &mut impl Rng) -> String {
    let mut words = Vec::with_capacity(5);
    for _ in 0..5 {
        words.push(COLORS[rng.gen_range(0..COLORS.len())]);
    }
    words.join(" ")
}

/// A short pseudo-sentence comment.
pub fn comment(rng: &mut impl Rng) -> String {
    let n = rng.gen_range(2..=4);
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())]);
    }
    words.join(" ")
}

/// A phone number shaped like TPC-H's `NN-NNN-NNN-NNNN`.
pub fn phone(rng: &mut impl Rng, nation: usize) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nation,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

/// A street-ish address.
pub fn address(rng: &mut impl Rng) -> String {
    format!(
        "{} {} st",
        rng.gen_range(1..10000),
        COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())]
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nations_reference_valid_regions() {
        for (name, region) in NATIONS {
            assert!(region < REGIONS.len(), "{name} has bad region {region}");
            assert!(!name.is_empty());
        }
        // FRANCE must exist (the IBM query filters on it) and be in EUROPE.
        let france = NATIONS.iter().find(|(n, _)| *n == "FRANCE").unwrap();
        assert_eq!(REGIONS[france.1], "EUROPE");
    }

    #[test]
    fn nation_names_unique() {
        let set: std::collections::HashSet<_> = NATIONS.iter().map(|(n, _)| n).collect();
        assert_eq!(set.len(), 25);
    }

    #[test]
    fn composed_strings_have_expected_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = part_type(&mut rng);
        assert_eq!(t.split(' ').count(), 3);
        let c = container(&mut rng);
        assert_eq!(c.split(' ').count(), 2);
        let b = brand(&mut rng);
        assert!(b.starts_with("Brand#") && b.len() == 8);
        let n = part_name(&mut rng);
        assert_eq!(n.split(' ').count(), 5);
        let p = phone(&mut rng, 6);
        assert_eq!(p.len(), 15);
        assert!(p.starts_with("16-"));
    }

    #[test]
    fn some_part_types_end_in_tin() {
        // ~1/5 of types end in TIN; over 200 draws we should see several.
        let mut rng = StdRng::seed_from_u64(2);
        let tins = (0..200)
            .filter(|_| part_type(&mut rng).ends_with("TIN"))
            .count();
        assert!(tins > 10, "{tins}");
    }

    #[test]
    fn some_part_names_contain_black() {
        let mut rng = StdRng::seed_from_u64(3);
        let blacks = (0..500)
            .filter(|_| part_name(&mut rng).contains("black"))
            .count();
        assert!(blacks > 10, "{blacks}");
    }
}
