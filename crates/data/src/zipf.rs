//! Zipfian sampling for the skewed ("TPC-D, z = 0.5") data sets.
//!
//! The paper's skewed experiments use the Microsoft skewed TPC-D generator
//! with Zipf parameter z = 0.5 (§VI). We implement Zipf(N, z) by rejection
//! inversion (Hörmann & Derflinger's algorithm, the same one `rand_distr`
//! uses), which samples in O(1) without precomputing the N-term harmonic
//! table — important because N can be millions of keys.

use rand::Rng;

/// A Zipf(n, s) distribution over ranks `1..=n`: P(k) ∝ 1/k^s.
///
/// `s = 0` degenerates to the uniform distribution over `1..=n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants for rejection inversion.
    h_x1: f64,
    h_n: f64,
    dd: f64,
}

impl Zipf {
    /// Create a Zipf distribution over `1..=n` with exponent `s >= 0`.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be >= 0");
        let h_x1 = h(1.5, s) - 1.0;
        let h_n = h(n as f64 + 0.5, s);
        let dd = 1.0 - h_inv(h(2.5, s) - pow_s(2.0, s), s);
        Zipf {
            n,
            s,
            h_x1,
            h_n,
            dd,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draw one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.s == 0.0 {
            return rng.gen_range(1..=self.n);
        }
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = h_inv(u, self.s);
            let k64 = (x + 0.5).floor().clamp(1.0, self.n as f64);
            let k = k64 as u64;
            if k64 - x <= self.dd || u >= h(k64 + 0.5, self.s) - pow_s(k64, self.s) {
                return k;
            }
        }
    }
}

/// `x^(-s)` via exp/ln for stability at fractional s.
#[inline]
fn pow_s(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// H(x) = integral of x^-s: (x^{1-s} - 1)/(1-s), with the s→1 limit ln(x).
#[inline]
fn h(x: f64, s: f64) -> f64 {
    let t = 1.0 - s;
    if t.abs() < 1e-9 {
        x.ln()
    } else {
        (x.powf(t) - 1.0) / t
    }
}

/// Inverse of `h`.
#[inline]
fn h_inv(v: f64, s: f64) -> f64 {
    let t = 1.0 - s;
    if t.abs() < 1e-9 {
        v.exp()
    } else {
        (1.0 + v * t).powf(1.0 / t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(n: u64, s: f64, draws: usize) -> Vec<u64> {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            let k = z.sample(&mut rng);
            assert!((1..=n).contains(&k));
            counts[k as usize] += 1;
        }
        counts
    }

    #[test]
    fn uniform_when_s_zero() {
        let counts = histogram(10, 0.0, 100_000);
        for (k, &n) in counts.iter().enumerate().skip(1) {
            let c = n as f64;
            assert!((7_000.0..13_000.0).contains(&c), "rank {k}: {c}");
        }
    }

    #[test]
    fn skew_favors_low_ranks() {
        let counts = histogram(1000, 1.0, 100_000);
        assert!(
            counts[1] > counts[10] * 5,
            "{} vs {}",
            counts[1],
            counts[10]
        );
        assert!(counts[1] > counts[100] * 20);
    }

    #[test]
    fn z_half_matches_theory() {
        // For z=0.5, P(1)/P(4) = 4^0.5 = 2.
        let counts = histogram(100, 0.5, 400_000);
        let ratio = counts[1] as f64 / counts[4] as f64;
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn covers_full_range() {
        let counts = histogram(50, 0.5, 200_000);
        for (k, &n) in counts.iter().enumerate().skip(1) {
            assert!(n > 0, "rank {k} never drawn");
        }
    }

    #[test]
    fn single_rank_degenerate() {
        let z = Zipf::new(1, 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(1000, 0.5);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_rejected() {
        Zipf::new(0, 0.5);
    }
}
