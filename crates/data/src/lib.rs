#![warn(missing_docs)]
//! # sip-data
//!
//! TPC-H-shaped data substrate: deterministic generators (uniform and
//! Zipf-skewed), in-memory tables with exact column statistics, and the
//! catalog abstraction the optimizer and engine read from.
//!
//! The paper evaluates on 1 GB TPC-H data plus a skewed variant produced by
//! the Microsoft TPC-D generator (Zipf z = 0.5); [`gen::generate`] with
//! [`gen::TpchConfig`] reproduces both shapes at any scale factor.

pub mod gen;
pub mod table;
pub mod text;
pub mod zipf;

pub use gen::{generate, lineitem_schema, orders_schema, stream_lineitem, TpchConfig};
pub use table::{Catalog, ColumnStats, ForeignKey, Table, TableBuilder, TableMeta};
pub use zipf::Zipf;
