//! Scale-behaviour tests for the generator: row counts track the scale
//! factor linearly, statistics stay sane, and (ignored by default) a
//! larger-scale smoke test for soak runs.

use sip_data::{generate, TpchConfig};

#[test]
fn row_counts_scale_linearly() {
    let small = generate(&TpchConfig::uniform(0.005)).unwrap();
    let large = generate(&TpchConfig::uniform(0.02)).unwrap();
    for table in ["part", "supplier", "partsupp", "customer", "orders"] {
        let s = small.get(table).unwrap().len() as f64;
        let l = large.get(table).unwrap().len() as f64;
        let ratio = l / s;
        assert!(
            (3.5..4.5).contains(&ratio),
            "{table}: {s} -> {l} (ratio {ratio})"
        );
    }
    // Lineitem is stochastic (1-7 lines per order) but still ~linear.
    let s = small.get("lineitem").unwrap().len() as f64;
    let l = large.get("lineitem").unwrap().len() as f64;
    assert!((3.0..5.0).contains(&(l / s)));
}

#[test]
fn fixed_tables_do_not_scale() {
    let small = generate(&TpchConfig::uniform(0.005)).unwrap();
    let large = generate(&TpchConfig::uniform(0.05)).unwrap();
    assert_eq!(small.get("region").unwrap().len(), 5);
    assert_eq!(large.get("region").unwrap().len(), 5);
    assert_eq!(small.get("nation").unwrap().len(), 25);
    assert_eq!(large.get("nation").unwrap().len(), 25);
}

#[test]
fn key_statistics_are_exact_at_scale() {
    let c = generate(&TpchConfig::uniform(0.01)).unwrap();
    let part = c.get("part").unwrap();
    // Primary key: distinct == row count.
    assert_eq!(part.distinct(0), part.len() as u64);
    // p_size covers 1..=50.
    let size_col = part.schema().index_of("p_size").unwrap();
    assert!(part.distinct(size_col) <= 50);
    let stats = &part.meta().column_stats[size_col];
    assert_eq!(stats.min, Some(sip_common::Value::Int(1)));
    assert_eq!(stats.max, Some(sip_common::Value::Int(50)));
}

#[test]
fn skewed_and_uniform_have_identical_shape() {
    // Skew changes distributions, not schema or cardinality structure.
    let u = generate(&TpchConfig::uniform(0.005)).unwrap();
    let z = generate(&TpchConfig::skewed(0.005)).unwrap();
    for table in u.table_names() {
        let tu = u.get(table).unwrap();
        let tz = z.get(table).unwrap();
        assert_eq!(tu.schema(), tz.schema(), "{table}");
        if table == "lineitem" {
            // Lines-per-order draws interleave differently with the Zipf
            // sampler's RNG consumption, so the total is only ~equal.
            let ratio = tz.len() as f64 / tu.len() as f64;
            assert!((0.9..1.1).contains(&ratio), "lineitem ratio {ratio}");
        } else {
            assert_eq!(tu.len(), tz.len(), "{table}");
        }
    }
}

/// Soak test at a production-ish scale — run explicitly with
/// `cargo test -p sip-data -- --ignored`.
#[test]
#[ignore = "large-scale soak test (~1 GB-class generation)"]
fn soak_generate_sf_half() {
    let c = generate(&TpchConfig::uniform(0.5)).unwrap();
    assert_eq!(c.get("part").unwrap().len(), 100_000);
    assert!(c.get("lineitem").unwrap().len() > 2_000_000);
}
