//! Full-query benchmarks: representative cells of Figures 5, 6, and 13
//! under Criterion statistics (small scale factor so each sample is fast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sip_bench::measure::ExperimentConfig;
use sip_core::{run_query, AipConfig, Strategy};
use sip_data::{generate, TpchConfig};
use sip_engine::ExecOptions;
use sip_queries::build_query;

fn bench_strategies(c: &mut Criterion) {
    let config = ExperimentConfig {
        scale_factor: 0.01,
        ..Default::default()
    };
    let catalog = generate(&TpchConfig {
        scale_factor: config.scale_factor,
        seed: config.seed,
        zipf_z: 0.0,
    })
    .unwrap();
    for id in ["Q2A", "Q3A", "Q4A"] {
        let spec = build_query(id, &catalog).unwrap();
        let mut group = c.benchmark_group(format!("query_{id}"));
        group.sample_size(10);
        for strategy in Strategy::ALL {
            // Magic only applies to the nested families.
            if strategy == Strategy::Magic && id == "Q4A" {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::from_parameter(strategy.name()),
                &strategy,
                |b, &strategy| {
                    b.iter(|| {
                        let opts = ExecOptions {
                            collect_rows: false,
                            ..Default::default()
                        };
                        run_query(&spec, &catalog, strategy, opts, &AipConfig::paper()).unwrap()
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
