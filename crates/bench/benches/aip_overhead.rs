//! The §VI-A overhead question under Criterion: how much does cost-based
//! AIP bookkeeping cost when it never builds a filter? The paper measured
//! ≈4% on Q1A and ≈2.5% on Q2A.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sip_core::{run_query, AipConfig, Strategy};
use sip_data::{generate, TpchConfig};
use sip_engine::ExecOptions;
use sip_queries::build_query;

fn bench_overhead(c: &mut Criterion) {
    let catalog = generate(&TpchConfig::uniform(0.01)).unwrap();
    for id in ["Q1A", "Q2A"] {
        let spec = build_query(id, &catalog).unwrap();
        let mut group = c.benchmark_group(format!("overhead_{id}"));
        group.sample_size(10);
        let cells = [
            ("baseline", Strategy::Baseline, AipConfig::paper()),
            (
                "cb_decisions_only",
                Strategy::CostBased,
                AipConfig {
                    ship_cost_per_byte: 1e15, // reject every candidate set
                    ..AipConfig::paper()
                },
            ),
            ("cb_full", Strategy::CostBased, AipConfig::paper()),
        ];
        for (label, strategy, aip) in cells {
            group.bench_with_input(BenchmarkId::from_parameter(label), &strategy, |b, &s| {
                b.iter(|| {
                    let opts = ExecOptions {
                        collect_rows: false,
                        ..Default::default()
                    };
                    run_query(&spec, &catalog, s, opts, &aip).unwrap()
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
