//! Microbenchmarks for the AIP-set substrate: Bloom insert/probe/intersect
//! and exact-hash-set probes, across the paper's parameter space.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sip_common::hash::fx_hash64;
use sip_common::Value;
use sip_filter::{AipSetBuilder, AipSetKind, BloomFilter};

fn bench_bloom_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_insert");
    for k in [1u32, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k={k}")),
            &k,
            |b, &k| {
                b.iter_batched(
                    || BloomFilter::with_fpr(100_000, 0.05, k),
                    |mut f| {
                        for i in 0..10_000u64 {
                            f.insert(fx_hash64(&i));
                        }
                        f
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("aip_probe");
    let n = 100_000usize;
    for (label, kind) in [("bloom", AipSetKind::Bloom), ("hash", AipSetKind::Hash)] {
        let mut b = AipSetBuilder::new(kind, n, 0.05, 1);
        for i in 0..n as i64 {
            let key = vec![Value::Int(i)];
            b.insert(sip_common::hash_key(&key), &key);
        }
        let set = b.finish();
        group.bench_function(label, |bench| {
            let mut i = 0i64;
            bench.iter(|| {
                i = (i + 1) % (2 * n as i64);
                let key = vec![Value::Int(i)];
                black_box(set.probe(sip_common::hash_key(&key), &key))
            })
        });
    }
    group.finish();
}

fn bench_intersect(c: &mut Criterion) {
    c.bench_function("bloom_intersect_1mbit", |bench| {
        let mut a = BloomFilter::with_bits(1 << 20, 1);
        let mut b = BloomFilter::with_bits(1 << 20, 1);
        for i in 0..50_000u64 {
            a.insert(fx_hash64(&i));
            b.insert(fx_hash64(&(i + 25_000)));
        }
        bench.iter(|| {
            let mut x = a.clone();
            x.intersect(&b).unwrap();
            black_box(x)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bloom_insert, bench_probe, bench_intersect
}
criterion_main!(benches);
