//! Repeated, summarized query measurements.

use sip_common::trace::{TraceLevel, N_PHASES};
use sip_common::Result;
use sip_core::{run_query, AipConfig, QuerySpec, Strategy};
use sip_data::Catalog;
use sip_engine::{DelayModel, ExecOptions};

/// Global experiment parameters.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Scale factor for generated data (1.0 = classic 1 GB row counts).
    pub scale_factor: f64,
    /// Data-generation seed.
    pub seed: u64,
    /// Repetitions per measurement (the paper uses ≥5).
    pub repeats: usize,
    /// Batch size for the engine (`--batch-size` on the repro CLI).
    pub batch_size: usize,
    /// Bounded-channel capacity in batches — the backpressure window
    /// (`--channel-capacity` on the repro CLI).
    pub channel_capacity: usize,
    /// Maximum degree of parallelism swept by the `scaling` benchmark
    /// (`--dop` on the repro CLI); 1 disables partition parallelism.
    pub dop: u32,
    /// Merge-tree fan-in for partition-parallel runs (`--merge-fanin`);
    /// 0 = auto (flat up to dop 4, binary tree above).
    pub merge_fanin: usize,
    /// Per-query deadline in milliseconds (`--timeout-ms`); `None` = no
    /// deadline. A run past the deadline fails with `deadline exceeded`
    /// plus its per-phase time shares.
    pub timeout_ms: Option<u64>,
    /// Retry budget (`--retries`): total attempts per failure site for
    /// the recovery layer — fragment replay, whole-run retry, and stage
    /// checkpoints all draw from this policy. 0 disables recovery
    /// (fail-fast, the pre-recovery behavior).
    pub retries: u32,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale_factor: 0.05,
            seed: 0xC0FFEE,
            repeats: 3,
            batch_size: 1024,
            channel_capacity: 16,
            dop: 4,
            merge_fanin: 0,
            timeout_ms: None,
            retries: 0,
        }
    }
}

impl ExperimentConfig {
    /// Engine options for one run: the validated sizing knobs, rows not
    /// collected (pure timing).
    pub fn exec_options(&self) -> Result<ExecOptions> {
        let mut opts = ExecOptions::validated(self.batch_size, self.channel_capacity)?;
        opts.collect_rows = false;
        opts.merge_fanin = self.merge_fanin;
        if let Some(ms) = self.timeout_ms {
            opts = opts.with_deadline(std::time::Duration::from_millis(ms));
        }
        if self.retries > 0 {
            opts = opts.with_retry(sip_common::retry::RetryPolicy::with_attempts(self.retries));
        }
        opts.validate()?;
        Ok(opts)
    }
}

/// Summary of repeated runs of one (query, strategy) cell.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Mean wall-clock seconds.
    pub secs_mean: f64,
    /// Half-width of a 95% confidence interval over the repeats.
    pub secs_ci95: f64,
    /// Mean peak intermediate state, MB.
    pub state_mb: f64,
    /// Result rows (identical across repeats by the correctness gate).
    pub rows: u64,
    /// AIP filters injected (mean).
    pub filters: f64,
    /// Rows dropped by AIP filters (mean).
    pub dropped: f64,
    /// Mean seconds attributed to each execution phase by `sip-trace`
    /// (order: [`sip_common::trace::Phase::ALL`]). Measurements always run
    /// at [`TraceLevel::Ops`]; the overhead of that level is itself bounded
    /// by the `kernels` trace-gate cells.
    pub phase_secs: [f64; N_PHASES],
}

/// Run one cell `repeats` times and summarize.
pub fn measure(
    spec: &QuerySpec,
    catalog: &Catalog,
    strategy: Strategy,
    config: &ExperimentConfig,
    aip: &AipConfig,
    delays: &[(&str, DelayModel)],
) -> Result<Measurement> {
    let mut secs = Vec::with_capacity(config.repeats);
    let mut state = Vec::with_capacity(config.repeats);
    let mut filters = Vec::with_capacity(config.repeats);
    let mut dropped = Vec::with_capacity(config.repeats);
    let mut rows = 0u64;
    let mut phase_secs = [0.0f64; N_PHASES];
    for _ in 0..config.repeats {
        let mut opts = config.exec_options()?.with_trace(TraceLevel::Ops);
        for (name, model) in delays {
            opts = opts.with_delay(*name, model.clone());
        }
        let out = run_query(spec, catalog, strategy, opts, aip)?;
        secs.push(out.metrics.wall_time.as_secs_f64());
        state.push(out.metrics.peak_state_mb());
        filters.push(out.metrics.filters_injected as f64);
        dropped.push(out.metrics.aip_dropped_total as f64);
        rows = out.metrics.rows_out;
        accumulate_phases(&mut phase_secs, &out.metrics);
    }
    for p in phase_secs.iter_mut() {
        *p /= config.repeats.max(1) as f64;
    }
    Ok(Measurement {
        secs_mean: mean(&secs),
        secs_ci95: ci95(&secs),
        state_mb: mean(&state),
        rows,
        filters: mean(&filters),
        dropped: mean(&dropped),
        phase_secs,
    })
}

/// Add one run's traced per-phase nanoseconds to a running total, in
/// seconds.
fn accumulate_phases(acc: &mut [f64; N_PHASES], metrics: &sip_engine::ExecMetrics) {
    for (a, n) in acc.iter_mut().zip(metrics.phase_totals()) {
        *a += n as f64 / 1e9;
    }
}

/// Run one cell `repeats` times at a fixed degree of parallelism.
///
/// Returns the summary plus one per-worker metric line per partition of the
/// final repeat (`aip_probed` / `aip_dropped` per worker), empty when the
/// serial fallback ran.
pub fn measure_dop(
    spec: &QuerySpec,
    catalog: &Catalog,
    strategy: Strategy,
    config: &ExperimentConfig,
    aip: &AipConfig,
    delays: &[(&str, DelayModel)],
    dop: u32,
) -> Result<(Measurement, Vec<String>)> {
    let mut secs = Vec::with_capacity(config.repeats);
    let mut state = Vec::with_capacity(config.repeats);
    let mut filters = Vec::with_capacity(config.repeats);
    let mut dropped = Vec::with_capacity(config.repeats);
    let mut rows = 0u64;
    let mut phase_secs = [0.0f64; N_PHASES];
    let mut workers = Vec::new();
    for _ in 0..config.repeats {
        let mut opts = config.exec_options()?.with_trace(TraceLevel::Ops);
        for (name, model) in delays {
            opts = opts.with_delay(*name, model.clone());
        }
        let (out, map) = sip_core::run_query_dop(spec, catalog, strategy, opts, aip, dop)?;
        secs.push(out.metrics.wall_time.as_secs_f64());
        state.push(out.metrics.peak_state_mb());
        filters.push(out.metrics.filters_injected as f64);
        dropped.push(out.metrics.aip_dropped_total as f64);
        rows = out.metrics.rows_out;
        accumulate_phases(&mut phase_secs, &out.metrics);
        if let Some(map) = map {
            workers = sip_engine::profile::worker_lines(&out.metrics, &map)
                .into_iter()
                .map(|line| format!("dop {dop} {line}"))
                .collect();
        }
    }
    for p in phase_secs.iter_mut() {
        *p /= config.repeats.max(1) as f64;
    }
    Ok((
        Measurement {
            secs_mean: mean(&secs),
            secs_ci95: ci95(&secs),
            state_mb: mean(&state),
            rows,
            filters: mean(&filters),
            dropped: mean(&dropped),
            phase_secs,
        },
        workers,
    ))
}

pub(crate) fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// 95% CI half-width with the small-sample t factor (df ≤ 9 table).
pub(crate) fn ci95(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64;
    let se = (var / n as f64).sqrt();
    const T: [f64; 9] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    ];
    let t = T.get(n - 2).copied().unwrap_or(1.96);
    t * se
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_ci() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(ci95(&[5.0]), 0.0);
        let tight = ci95(&[1.0, 1.0, 1.0]);
        assert_eq!(tight, 0.0);
        let loose = ci95(&[1.0, 3.0, 5.0]);
        assert!(loose > 0.0);
    }

    #[test]
    fn measure_runs_a_cell() {
        // Use the Fig. 1 running example: its value-based predicates keep
        // rows at any scale, unlike Q2A's ~1/1000 categorical part filter,
        // which selects zero parts at tiny scale factors.
        let config = ExperimentConfig {
            scale_factor: 0.01,
            repeats: 2,
            ..Default::default()
        };
        let catalog = sip_data::generate(&sip_data::TpchConfig {
            scale_factor: config.scale_factor,
            seed: config.seed,
            zipf_z: 0.0,
        })
        .unwrap();
        let spec = sip_queries::build_query("EX", &catalog).unwrap();
        let m = measure(
            &spec,
            &catalog,
            sip_core::Strategy::FeedForward,
            &config,
            &sip_core::AipConfig::paper(),
            &[],
        )
        .unwrap();
        assert!(m.secs_mean > 0.0);
        assert!(m.rows >= 1);
    }
}
