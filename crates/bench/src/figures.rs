//! Per-figure experiment runners.

use crate::measure::{ci95, mean, measure, measure_dop, ExperimentConfig, Measurement};
use sip_common::json::json_str;
use sip_common::trace::{Phase, N_PHASES};
use sip_common::Result;
use sip_core::{AipConfig, FeedForward, QuerySpec, Strategy};
use sip_data::{generate, Catalog, TpchConfig};
use sip_engine::{execute, DelayModel, ExecOptions};
use sip_filter::AipSetKind;
use sip_net::{run_distributed, LinkSpec, RemoteConfig};
use sip_plan::{PredicateIndex, SourcePredGraph};
use sip_queries::{all_queries, build_query, query_def};
use std::fmt::Write as _;
use std::sync::Arc;

/// One measured cell of a figure.
#[derive(Clone, Debug, Default)]
pub struct ReportRow {
    /// Query id (`Q1A`...).
    pub query: String,
    /// Strategy name.
    pub strategy: String,
    /// Mean seconds.
    pub secs: f64,
    /// 95% CI half-width, seconds.
    pub ci: f64,
    /// Peak intermediate state, MB.
    pub state_mb: f64,
    /// Output rows.
    pub rows: u64,
    /// Extra column (filters injected, bytes shipped, ...).
    pub extra: String,
    /// Mean seconds per execution phase from `sip-trace`
    /// ([`sip_common::trace::Phase::ALL`] order); all zero for cells
    /// measured outside the traced `measure`/`measure_dop` path.
    pub phase_secs: [f64; N_PHASES],
}

/// A rendered figure.
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// Figure id (`fig5`...).
    pub id: String,
    /// Title echoing the paper's caption.
    pub title: String,
    /// Measured cells.
    pub rows: Vec<ReportRow>,
    /// Free-form notes (deviations, expectations).
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Render as machine-readable JSON (the `repro --json <dir>` artifact,
    /// one `BENCH_<id>.json` per figure) so the perf trajectory can be
    /// tracked across PRs: figure id, the experiment config, and one point
    /// per measured cell.
    pub fn to_json(&self, config: &ExperimentConfig) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"figure\": {},", json_str(&self.id));
        let _ = writeln!(out, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(
            out,
            "  \"config\": {{\"scale_factor\": {}, \"seed\": {}, \"repeats\": {}, \
\"batch_size\": {}, \"channel_capacity\": {}, \"dop\": {}, \"merge_fanin\": {}, \
\"retries\": {}}},",
            config.scale_factor,
            config.seed,
            config.repeats,
            config.batch_size,
            config.channel_capacity,
            config.dop,
            config.merge_fanin,
            config.retries
        );
        out.push_str("  \"phase_names\": [");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(p.name()));
        }
        out.push_str("],\n");
        out.push_str("  \"points\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let mut phases = String::from("[");
            for (j, s) in r.phase_secs.iter().enumerate() {
                if j > 0 {
                    phases.push_str(", ");
                }
                let _ = write!(phases, "{s:.6}");
            }
            phases.push(']');
            let _ = write!(
                out,
                "    {{\"query\": {}, \"strategy\": {}, \"secs\": {:.6}, \"ci95\": {:.6}, \
\"state_mb\": {:.3}, \"rows\": {}, \"extra\": {}, \"phase_secs\": {}}}",
                json_str(&r.query),
                json_str(&r.strategy),
                r.secs,
                r.ci,
                r.state_mb,
                r.rows,
                json_str(&r.extra),
                phases
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(n));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Render as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(
            out,
            "| query | strategy | time (s) | ±95% | state (MB) | rows | notes |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "| {} | {} | {:.3} | {:.3} | {:.2} | {} | {} |",
                r.query, r.strategy, r.secs, r.ci, r.state_mb, r.rows, r.extra
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out
    }
}

/// The experiment harness: one uniform and one skewed data set plus config.
pub struct Harness {
    /// Experiment parameters.
    pub config: ExperimentConfig,
    uniform: Catalog,
    skewed: Catalog,
}

const FIG5_QUERIES: [&str; 8] = ["Q3A", "Q3B", "Q3D", "Q3E", "Q1A", "Q1B", "Q1D", "Q1E"];
const FIG6_QUERIES: [&str; 5] = ["Q2A", "Q2B", "Q2C", "Q2D", "Q2E"];

impl Harness {
    /// Generate both data sets.
    pub fn new(config: ExperimentConfig) -> Result<Self> {
        let uniform = generate(&TpchConfig {
            scale_factor: config.scale_factor,
            seed: config.seed,
            zipf_z: 0.0,
        })?;
        let skewed = generate(&TpchConfig {
            scale_factor: config.scale_factor,
            seed: config.seed,
            zipf_z: 0.5,
        })?;
        Ok(Harness {
            config,
            uniform,
            skewed,
        })
    }

    fn catalog_for(&self, id: &str) -> Result<&Catalog> {
        Ok(if query_def(id)?.skewed_data {
            &self.skewed
        } else {
            &self.uniform
        })
    }

    fn run_set(
        &self,
        queries: &[&str],
        strategies: &[Strategy],
        delays: &[(&str, DelayModel)],
    ) -> Result<Vec<ReportRow>> {
        let mut rows = Vec::new();
        for &id in queries {
            let catalog = self.catalog_for(id)?;
            let spec = build_query(id, catalog)?;
            for &strategy in strategies {
                let m = measure(
                    &spec,
                    catalog,
                    strategy,
                    &self.config,
                    &AipConfig::paper(),
                    delays,
                )?;
                rows.push(to_row(id, strategy.name(), &m));
            }
        }
        Ok(rows)
    }

    /// Figures 5 (times) and 7 (space): TPC-H Q2 + IBM variants.
    pub fn fig5_7(&self) -> Result<(FigureReport, FigureReport)> {
        let rows = self.run_set(&FIG5_QUERIES, &Strategy::ALL, &[])?;
        Ok(split_time_space(
            rows,
            (
                "fig5",
                "Running times: variations on TPC-H Query 2 and the IBM query",
            ),
            (
                "fig7",
                "Space usage: variations on TPC-H Query 2 and IBM variant",
            ),
            vec![],
        ))
    }

    /// Figures 6 (times) and 8 (space): TPC-H Q17 variants.
    pub fn fig6_8(&self) -> Result<(FigureReport, FigureReport)> {
        let rows = self.run_set(&FIG6_QUERIES, &Strategy::ALL, &[])?;
        Ok(split_time_space(
            rows,
            ("fig6", "Running times: variations on TPC-H Query 17"),
            ("fig8", "Space usage: variations on TPC-H Query 17"),
            vec![],
        ))
    }

    /// Figures 9 (times) and 11 (space): Q2/IBM variants with PARTSUPP
    /// delayed 100 ms + 5 ms per 1000 tuples.
    pub fn fig9_11(&self) -> Result<(FigureReport, FigureReport)> {
        let delays = [("partsupp", DelayModel::paper_delayed())];
        let rows = self.run_set(&FIG5_QUERIES, &Strategy::ALL, &delays)?;
        Ok(split_time_space(
            rows,
            (
                "fig9",
                "Running times with delayed PARTSUPP: TPC-H Query 2 and IBM variants",
            ),
            (
                "fig11",
                "Space usage under delay: TPC-H Query 2 and IBM variants",
            ),
            vec![],
        ))
    }

    /// Figures 10 (times) and 12 (space): Q17 variants under delay. Q17's
    /// plans contain no PARTSUPP, so its large input (LINEITEM) is delayed
    /// with the same model — preserving the experiment's intent.
    pub fn fig10_12(&self) -> Result<(FigureReport, FigureReport)> {
        let delays = [("lineitem", DelayModel::paper_delayed())];
        let rows = self.run_set(&FIG6_QUERIES, &Strategy::ALL, &delays)?;
        Ok(split_time_space(
            rows,
            (
                "fig10",
                "Running times with delayed large input: TPC-H Query 17 variants",
            ),
            ("fig12", "Space usage under delay: TPC-H Query 17 variants"),
            vec!["Q17 has no PARTSUPP; LINEITEM (its large input) is delayed instead.".into()],
        ))
    }

    /// Figures 13 (times) and 14 (space): join queries Q4/Q5 locally and
    /// Q3C/Q1C with PARTSUPP fetched over a simulated 100 Mbps link.
    pub fn fig13_14(&self) -> Result<(FigureReport, FigureReport)> {
        let strategies = [
            Strategy::Baseline,
            Strategy::FeedForward,
            Strategy::CostBased,
        ];
        let mut rows = self.run_set(&["Q4A", "Q5A", "Q4B", "Q5B"], &strategies, &[])?;
        for id in ["Q3C", "Q1C"] {
            let catalog = self.catalog_for(id)?;
            let spec = build_query(id, catalog)?;
            let remote = RemoteConfig::new(
                query_def(id)?.remote_table.expect("distributed query"),
                LinkSpec::lan_100mbps(),
            );
            for strategy in strategies {
                let mut m = self.measure_distributed(&spec, catalog, strategy, &remote)?;
                m.query = id.to_string();
                rows.push(m);
            }
        }
        Ok(split_time_space(
            rows,
            (
                "fig13",
                "Running times for join and distributed join queries",
            ),
            ("fig14", "Space usage for join and distributed join queries"),
            vec!["Q3C/Q1C fetch PARTSUPP over a simulated 100 Mbps link.".into()],
        ))
    }

    fn measure_distributed(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        strategy: Strategy,
        remote: &RemoteConfig,
    ) -> Result<ReportRow> {
        let mut secs = Vec::new();
        let mut state = Vec::new();
        let mut bytes = 0u64;
        let mut rows_out = 0u64;
        for _ in 0..self.config.repeats {
            let opts = self.config.exec_options()?;
            let run = run_distributed(spec, catalog, strategy, opts, &AipConfig::paper(), remote)?;
            secs.push(run.output.metrics.wall_time.as_secs_f64());
            state.push(run.output.metrics.peak_state_mb());
            bytes = run.net.total_bytes();
            rows_out = run.output.metrics.rows_out;
        }
        Ok(ReportRow {
            query: "dist".into(),
            strategy: strategy.name().into(),
            secs: mean(&secs),
            ci: ci95(&secs),
            state_mb: mean(&state),
            rows: rows_out,
            extra: format!("{:.2} MB shipped", bytes as f64 / 1e6),
            ..Default::default()
        })
    }

    /// Table I: the query catalog.
    pub fn table1(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### Table I — Queries used in experiments\n");
        for def in all_queries() {
            let _ = writeln!(out, "**{}** ({}, {})", def.id, def.family, def.description);
            let _ = writeln!(out, "```sql\n{}\n```", def.sql);
        }
        out
    }

    /// Fig. 1: the running example's plan.
    pub fn fig1(&self) -> Result<String> {
        let spec = build_query("EX", &self.uniform)?;
        let phys = spec.lower(&self.uniform, Strategy::Baseline)?;
        Ok(format!(
            "### Fig. 1 — plan for the running example\n\n```\n{}\n```\n",
            phys.display()
        ))
    }

    /// Fig. 2: AIP Manager structures for the running example — the
    /// source-predicate graph and the registry after a feed-forward run.
    pub fn fig2(&self) -> Result<String> {
        let spec = build_query("EX", &self.uniform)?;
        let graph = SourcePredGraph::build(&spec.plan, &spec.attrs);
        let eq = PredicateIndex::build(&spec.plan).eq;
        let ff = FeedForward::new(eq, AipConfig::paper());
        let phys = Arc::new(spec.lower(&self.uniform, Strategy::FeedForward)?);
        let _ = execute(phys, ff.clone(), ExecOptions::default())?;
        Ok(format!(
            "### Fig. 2 — AIP Manager structures for the running example\n\n```\n{}\n{}```\n",
            graph.display(),
            ff.registry().display()
        ))
    }

    /// §VI-A overhead measurement: cost-based bookkeeping with set
    /// construction priced out (every candidate evaluated, none built),
    /// compared against the baseline. The paper reports ≈4% (Q1A) and
    /// ≈2.5% (Q2A).
    pub fn overhead(&self) -> Result<FigureReport> {
        let mut rows = Vec::new();
        for id in ["Q1A", "Q2A"] {
            let catalog = self.catalog_for(id)?;
            let spec = build_query(id, catalog)?;
            let base = measure(
                &spec,
                catalog,
                Strategy::Baseline,
                &self.config,
                &AipConfig::paper(),
                &[],
            )?;
            let reject_all = AipConfig {
                ship_cost_per_byte: 1e15, // price every set out of existence
                ..AipConfig::paper()
            };
            let cb = measure(
                &spec,
                catalog,
                Strategy::CostBased,
                &self.config,
                &reject_all,
                &[],
            )?;
            let overhead = (cb.secs_mean / base.secs_mean - 1.0) * 100.0;
            rows.push(to_row(id, "Baseline", &base));
            let mut r = to_row(id, "CB (decisions only)", &cb);
            r.extra = format!("overhead {overhead:+.1}%");
            rows.push(r);
        }
        Ok(FigureReport {
            id: "overhead".into(),
            title: "§VI-A: cost-estimation overhead with no beneficial filters".into(),
            rows,
            notes: vec!["Paper reports ≈4% (Q1A) and ≈2.5% (Q2A).".into()],
        })
    }

    /// Partition-parallel scaling (`sip-parallel`): the Fig. 1 running
    /// example *and* a multi-class join chain (TPC-H 5) over skewed data
    /// with the paper's slow-source delay model, swept over dop ∈ {1, 2,
    /// 4, ..., `--dop`}. The running example scales through partitioned
    /// scans alone; the multi-class chain additionally crosses shuffle
    /// meshes at every partitioning-class change — the configuration that
    /// previously collapsed to replicated scans or a serial region.
    pub fn scaling(&self) -> Result<FigureReport> {
        let queries: [(&str, &[(&str, DelayModel)]); 2] = [
            (
                "EX",
                &[
                    ("l", DelayModel::paper_delayed()),
                    ("ps1", DelayModel::paper_delayed()),
                    ("ps2", DelayModel::paper_delayed()),
                ],
            ),
            // Multi-class chain: custkey → orderkey → suppkey/nationkey
            // partitioning classes, with slow fact sources on both sides
            // of the first repartition boundary.
            (
                "Q4A",
                &[
                    ("l", DelayModel::paper_delayed()),
                    ("o", DelayModel::paper_delayed()),
                ],
            ),
        ];
        let mut dops = vec![1u32];
        let mut d = 2;
        while d <= self.config.dop.max(1) {
            dops.push(d);
            d *= 2;
        }
        let mut rows = Vec::new();
        let mut notes = Vec::new();
        for (id, delays) in queries {
            let catalog = if id == "EX" {
                &self.skewed
            } else {
                self.catalog_for(id)?
            };
            let spec = build_query(id, catalog)?;
            let mut base = None;
            for &dop in &dops {
                let (m, workers) = measure_dop(
                    &spec,
                    catalog,
                    Strategy::FeedForward,
                    &self.config,
                    &AipConfig::paper(),
                    delays,
                    dop,
                )?;
                let speedup = match base {
                    None => {
                        base = Some(m.secs_mean);
                        1.0
                    }
                    Some(b) => b / m.secs_mean,
                };
                let mut r = to_row(id, &format!("FF dop={dop}"), &m);
                r.extra = format!("{} filters, speedup {speedup:.2}x", m.filters.round());
                rows.push(r);
                notes.extend(workers);
            }
        }
        Ok(FigureReport {
            id: "scaling".into(),
            title: "sip-parallel: partition-parallel scaling on slow sources".into(),
            rows,
            notes,
        })
    }

    /// Batch-kernel micro-figure: the two hottest per-row paths — the
    /// injected-filter tap probe and shuffle routing — measured
    /// row-at-a-time (the pre-vectorization interior: one hash + one key
    /// clone per row per filter via `probe_quiet`, plus a second routing
    /// hash) against the batch kernels (`TapKernel`: one shared digest pass
    /// per batch per key-column set, selection-vector routing, no key
    /// materialization). Sweep `--batch-size` / `--channel-capacity` to
    /// explore the space; the acceptance bar is ≥2× at batch 1024.
    pub fn kernels(&self) -> Result<FigureReport> {
        use sip_engine::{InjectedFilter, TapKernel};
        use sip_filter::AipSetBuilder;
        use std::hint::black_box;
        use std::sync::Arc as StdArc;
        use std::time::Instant;

        let batch = self.config.batch_size.max(1);
        let n_rows: usize = 1 << 17;
        let key_space = 10_000i64;
        let dop = 4u32;
        // Join-output-shaped rows: key, payload int, payload string.
        let rows: Vec<sip_common::Row> = (0..n_rows as i64)
            .map(|i| {
                sip_common::Row::new(vec![
                    sip_common::Value::Int(i % key_space),
                    sip_common::Value::Int(i),
                    sip_common::Value::str("payload-string"),
                ])
            })
            .collect();
        // A realistic tap stack over the key column: a Bloom filter keeping
        // roughly half the key domain, stacked with an exact hash set.
        let build = |kind: AipSetKind, keys: std::ops::Range<i64>| {
            let mut b = AipSetBuilder::new(kind, (keys.end - keys.start) as usize, 0.05, 1);
            for k in keys {
                let key = vec![sip_common::Value::Int(k)];
                b.insert(sip_common::hash_key(&key), &key);
            }
            StdArc::new(b.finish())
        };
        let chain: Vec<StdArc<InjectedFilter>> = vec![
            StdArc::new(InjectedFilter::new(
                "bloom[k]",
                vec![0],
                build(AipSetKind::Bloom, 0..key_space / 2),
            )),
            StdArc::new(InjectedFilter::new(
                "hash[k]",
                vec![0],
                build(AipSetKind::Hash, 0..key_space / 4),
            )),
        ];
        let repeats = self.config.repeats.max(1);

        // --- Tap probe: row-at-a-time (probe_quiet per row per filter) ---
        let mut survivors = 0usize;
        let t = Instant::now();
        for _ in 0..repeats {
            for chunk in rows.chunks(batch) {
                for row in chunk {
                    let mut keep = true;
                    for f in &chain {
                        if f.probe_quiet(row) == Some(false) {
                            keep = false;
                            break;
                        }
                    }
                    if keep {
                        survivors += 1;
                    }
                }
            }
        }
        let tap_row_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let row_survivors = black_box(survivors) / repeats;

        // --- Tap probe: batch kernel ---
        let mut kernel = TapKernel::new();
        let mut survivors = 0usize;
        let t = Instant::now();
        for _ in 0..repeats {
            for chunk in rows.chunks(batch) {
                kernel.begin(chunk.len());
                kernel.probe_chain(&chain, chunk);
                survivors += kernel.sel().len();
            }
        }
        let tap_batch_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let batch_survivors = black_box(survivors) / repeats;
        if row_survivors != batch_survivors {
            return Err(sip_common::SipError::Exec(format!(
                "kernel divergence: row tap kept {row_survivors}, batch tap kept {batch_survivors}"
            )));
        }

        // --- Shuffle route: row-at-a-time (route hash per row, then the
        // per-destination buffers tap-probe each row as the old emitters
        // did) ---
        let mut buckets: Vec<Vec<sip_common::Row>> =
            (0..dop as usize).map(|_| Vec::new()).collect();
        let mut routed = 0usize;
        let t = Instant::now();
        for _ in 0..repeats {
            for chunk in rows.chunks(batch) {
                for b in buckets.iter_mut() {
                    b.clear();
                }
                for row in chunk {
                    let owner = sip_common::hash::partition_of(row.key_hash(&[0]), dop);
                    buckets[owner as usize].push(row.clone());
                }
                for b in &buckets {
                    for row in b {
                        let mut keep = true;
                        for f in &chain {
                            if f.probe_quiet(row) == Some(false) {
                                keep = false;
                                break;
                            }
                        }
                        if keep {
                            routed += 1;
                        }
                    }
                }
            }
        }
        let route_row_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let row_routed = black_box(routed) / repeats;

        // --- Shuffle route: batch kernel (tap + routing share one digest
        // pass; per-destination selection vectors gathered into outgoing
        // batches) ---
        let mut kernel = TapKernel::new();
        let mut route: Vec<sip_common::SelVec> = (0..dop as usize)
            .map(|_| sip_common::SelVec::default())
            .collect();
        let mut owners: Vec<u32> = Vec::new();
        let mut routed = 0usize;
        let t = Instant::now();
        for _ in 0..repeats {
            for chunk in rows.chunks(batch) {
                kernel.begin(chunk.len());
                kernel.probe_chain(&chain, chunk);
                for s in route.iter_mut() {
                    s.clear();
                }
                {
                    let d = kernel.digests(chunk, &[0]).digests();
                    owners.clear();
                    owners.extend(d.iter().map(|&d| sip_common::hash::partition_of(d, dop)));
                }
                for i in kernel.sel().iter() {
                    route[owners[i as usize] as usize].push(i);
                }
                for (b, s) in buckets.iter_mut().zip(route.iter()) {
                    b.clear();
                    b.extend(s.iter().map(|i| chunk[i as usize].clone()));
                    routed += b.len();
                }
            }
        }
        let route_batch_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let batch_routed = black_box(routed) / repeats;
        if row_routed != batch_routed {
            return Err(sip_common::SipError::Exec(format!(
                "kernel divergence: row route kept {row_routed}, batch route kept {batch_routed}"
            )));
        }

        // --- Trace gate: the tap-probe batch loop bare vs the same loop
        // wrapped in per-batch sip-trace spans with tracing *off* — the
        // cost every operator pays on every batch when `--trace` is not
        // requested (one atomic-free level check per span; `begin` returns
        // 0 without reading the clock). Interleaved min-of-repeats so
        // ambient noise hits both variants equally; CI holds gated-off to
        // within 2% of untraced.
        let hub = sip_common::trace::TraceHub::new(sip_common::trace::TraceLevel::Off);
        let gate_reps = repeats.max(5);
        let mut untraced_best = f64::INFINITY;
        let mut gated_best = f64::INFINITY;
        let mut survivors = 0usize;
        for _ in 0..gate_reps {
            let t = Instant::now();
            for chunk in rows.chunks(batch) {
                kernel.begin(chunk.len());
                kernel.probe_chain(&chain, chunk);
                survivors += kernel.sel().len();
            }
            untraced_best = untraced_best.min(t.elapsed().as_secs_f64());

            let mut tr = hub.tracer(0, None);
            let t = Instant::now();
            for chunk in rows.chunks(batch) {
                let t0 = tr.begin();
                kernel.begin(chunk.len());
                kernel.probe_chain(&chain, chunk);
                survivors += kernel.sel().len();
                tr.end(Phase::TapProbe, t0);
            }
            gated_best = gated_best.min(t.elapsed().as_secs_f64());
            tr.flush();
        }
        black_box(survivors);

        // --- Cancel gate: the same batch loop bare vs with the per-batch
        // CancelToken check every emitter now performs (one relaxed atomic
        // load per batch while no deadline is armed and nothing has
        // cancelled). Interleaved best-of like the trace gate; CI holds
        // checked to within 2% of unchecked.
        let token = sip_common::CancelToken::new();
        let mut unchecked_best = f64::INFINITY;
        let mut checked_best = f64::INFINITY;
        let mut survivors = 0usize;
        for _ in 0..gate_reps {
            let t = Instant::now();
            for chunk in rows.chunks(batch) {
                kernel.begin(chunk.len());
                kernel.probe_chain(&chain, chunk);
                survivors += kernel.sel().len();
            }
            unchecked_best = unchecked_best.min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            for chunk in rows.chunks(batch) {
                if token.is_cancelled() {
                    break;
                }
                kernel.begin(chunk.len());
                kernel.probe_chain(&chain, chunk);
                survivors += kernel.sel().len();
            }
            checked_best = checked_best.min(t.elapsed().as_secs_f64());
        }
        black_box(survivors);

        let mrows = |secs: f64| n_rows as f64 / secs / 1e6;
        let cell =
            |name: &str, variant: &str, secs: f64, kept: usize, speedup: Option<f64>| ReportRow {
                query: name.into(),
                strategy: variant.into(),
                secs,
                ci: 0.0,
                state_mb: 0.0,
                rows: kept as u64,
                extra: match speedup {
                    Some(s) => format!("{:.1} Mrows/s, speedup {s:.2}x", mrows(secs)),
                    None => format!("{:.1} Mrows/s", mrows(secs)),
                },
                ..Default::default()
            };
        let rows_out = vec![
            cell("tap-probe", "row", tap_row_secs, row_survivors, None),
            cell(
                "tap-probe",
                "batch",
                tap_batch_secs,
                batch_survivors,
                Some(tap_row_secs / tap_batch_secs),
            ),
            cell("shuffle-route", "row", route_row_secs, row_routed, None),
            cell(
                "shuffle-route",
                "batch",
                route_batch_secs,
                batch_routed,
                Some(route_row_secs / route_batch_secs),
            ),
            cell(
                "trace-gate",
                "untraced",
                untraced_best,
                batch_survivors,
                None,
            ),
            cell(
                "trace-gate",
                "gated-off",
                gated_best,
                batch_survivors,
                Some(untraced_best / gated_best),
            ),
            cell(
                "cancel-gate",
                "unchecked",
                unchecked_best,
                batch_survivors,
                None,
            ),
            cell(
                "cancel-gate",
                "checked",
                checked_best,
                batch_survivors,
                Some(unchecked_best / checked_best),
            ),
        ];
        Ok(FigureReport {
            id: "kernels".into(),
            title: format!(
                "batch kernels vs row-at-a-time interiors ({} rows, batch {batch}, 2-filter tap, dop {dop} routing)",
                n_rows
            ),
            rows: rows_out,
            notes: vec![
                "row = per-row digest + key clone per filter (probe_quiet) and a second routing hash; \
batch = one shared digest pass per key-column set, selection-vector routing."
                    .into(),
                "trace-gate = tap-probe batch loop bare vs wrapped in disabled sip-trace spans \
(TraceLevel::Off), interleaved best-of; the gated-off/untraced ratio bounds the tracing-off tax."
                    .into(),
                "cancel-gate = the same loop bare vs with the per-batch CancelToken check every \
emitter performs, interleaved best-of; the checked/unchecked ratio bounds the cancellation tax."
                    .into(),
            ],
        })
    }

    /// Recovery micro-figure: the fault-free tax of installing a
    /// `RetryPolicy`, and the wall-clock cost of an actually-recovered run.
    ///
    /// * `recovery-gate` — Q4A partition-parallel at the configured dop,
    ///   retry-off vs retry-on with **no faults injected**. Retry-on
    ///   routes every mesh source chain through a fragment supervisor (an
    ///   extra channel hop plus a seam-gate lock per committed batch), so
    ///   this cell prices the standing overhead of recoverability.
    ///   Interleaved best-of; on a quiet multi-core box the two are at
    ///   parity (the supervision cost is one channel hop and one
    ///   uncontended lock per mesh-source batch), so CI holds retry-on
    ///   within 1.5x of retry-off plus a 50 ms absolute floor — a full
    ///   dop-wide query on a shared runner swings far more than the
    ///   single-threaded kernel gates, and the loose bound catches
    ///   regressions that make supervision a real data-path cost without
    ///   tripping on scheduler noise.
    /// * `recovered-run` — the same query with a bounded `Error` fault on
    ///   a scan (fires exactly once, plan-wide), healed below a budget of
    ///   3 attempts; wall clock vs the fault-free retry-off best.
    ///   Correctness is asserted inline before any timing: healed rows
    ///   must be byte-identical to the serial oracle and the run must
    ///   report `recovered`.
    pub fn recovery(&self) -> Result<FigureReport> {
        use sip_common::retry::RetryPolicy;
        use sip_engine::{
            canonical, execute_ctx, execute_oracle, ExecContext, FaultKind, FaultPlan, NoopMonitor,
        };
        use sip_parallel::{partition_plan_cfg, PartitionConfig};
        use std::time::Instant;

        let dop = self.config.dop.max(2);
        let catalog = self.catalog_for("Q4A")?;
        let spec = build_query("Q4A", catalog)?;
        let phys = Arc::new(spec.lower(catalog, Strategy::Baseline)?);
        let expected = sip_engine::canonical(&execute_oracle(&phys)?);
        let (expanded, map) = partition_plan_cfg(&phys, dop, &PartitionConfig::default())
            .map_err(|e| sip_common::SipError::Exec(format!("recovery: cannot partition: {e}")))?;
        let retry = RetryPolicy::with_attempts(3);

        let run = |opts: ExecOptions| {
            sip_engine::run_with_recovery(opts, |o| {
                let ctx = ExecContext::new_partitioned(Arc::clone(&expanded), o, Arc::clone(&map));
                execute_ctx(ctx, Arc::new(NoopMonitor))
            })
        };
        // A fresh FaultPlan per run: the fire ledger is shared across the
        // *attempts* of one run (so the `times` budget holds through
        // retries) but must reset between repeats.
        let faulted = || FaultPlan::none().with_kind_fault_times("Scan", 0, FaultKind::Error, 1);

        // Correctness gate before any timing.
        {
            let mut o = self.config.exec_options()?;
            o.collect_rows = true;
            let out = run(o.with_retry(retry.clone()))?;
            if canonical(&out.rows) != expected {
                return Err(sip_common::SipError::Exec(
                    "recovery: fault-free retry-on run diverged from the oracle".into(),
                ));
            }
            let mut o = self.config.exec_options()?;
            o.collect_rows = true;
            let out = run(o.with_faults(faulted()).with_retry(retry.clone()))?;
            if canonical(&out.rows) != expected {
                return Err(sip_common::SipError::Exec(
                    "recovery: healed run diverged from the oracle (duplicate or lost rows)".into(),
                ));
            }
            if !out.metrics.recovered {
                return Err(sip_common::SipError::Exec(
                    "recovery: faulted run healed but did not report recovered".into(),
                ));
            }
        }

        // Interleaved best-of like the kernel gates: ambient noise hits
        // all three variants equally within each round.
        let reps = self.config.repeats.max(3);
        let mut off_best = f64::INFINITY;
        let mut on_best = f64::INFINITY;
        let mut healed_best = f64::INFINITY;
        let mut healed_attempts = 1u32;
        let mut fragment_retries = 0u64;
        for _ in 0..reps {
            let mut o = self.config.exec_options()?;
            o.retry = None;
            let t = Instant::now();
            run(o)?;
            off_best = off_best.min(t.elapsed().as_secs_f64());

            let o = self.config.exec_options()?.with_retry(retry.clone());
            let t = Instant::now();
            run(o)?;
            on_best = on_best.min(t.elapsed().as_secs_f64());

            let o = self
                .config
                .exec_options()?
                .with_faults(faulted())
                .with_retry(retry.clone());
            let t = Instant::now();
            let out = run(o)?;
            healed_best = healed_best.min(t.elapsed().as_secs_f64());
            healed_attempts = healed_attempts.max(out.metrics.attempts);
            fragment_retries =
                fragment_retries.max(out.metrics.per_op.iter().map(|m| m.retries).sum::<u64>());
        }

        let n_rows = expected.len() as u64;
        let cell = |name: &str, variant: &str, secs: f64, extra: String| ReportRow {
            query: name.into(),
            strategy: variant.into(),
            secs,
            ci: 0.0,
            state_mb: 0.0,
            rows: n_rows,
            extra,
            ..Default::default()
        };
        Ok(FigureReport {
            id: "recovery".into(),
            title: format!(
                "recovery: fault-free retry overhead and healed-run cost (Q4A, dop {dop}, \
best of {reps})"
            ),
            rows: vec![
                cell("recovery-gate", "retry-off", off_best, String::new()),
                cell(
                    "recovery-gate",
                    "retry-on",
                    on_best,
                    format!("overhead {:+.1}%", (on_best / off_best - 1.0) * 100.0),
                ),
                cell("recovered-run", "fault-free", off_best, String::new()),
                cell(
                    "recovered-run",
                    "healed",
                    healed_best,
                    format!(
                        "{:.2}x fault-free, run attempts {healed_attempts}, \
fragment retries {fragment_retries}",
                        healed_best / off_best
                    ),
                ),
            ],
            notes: vec![
                "recovery-gate = Q4A partition-parallel, no faults, retry-off vs retry-on \
(fragment supervisors + seam gating armed), interleaved best-of; the on/off ratio bounds \
the standing cost of recoverability — parity on a quiet box, CI-guarded at 1.5x plus a \
50 ms floor to ride out scheduler noise on oversubscribed runners."
                    .into(),
                "recovered-run = the same query with a bounded Error fault on a scan (fires \
once), healed below a 3-attempt budget; rows byte-checked against the serial oracle before \
timing. attempts counts whole-run retries (1 = healed in place by fragment replay)."
                    .into(),
            ],
        })
    }

    /// Build-side micro-figure: the AIP working-copy *build* path (§IV-A's
    /// feed-forward working sets and §IV-B's bulk state scan), row-admit vs
    /// batch-admit.
    ///
    /// * `admit-build` — what a stateful operator's admit site pays per
    ///   arriving batch. Both variants include the operator's own digest
    ///   pass (the operator hashes its keys regardless); row then admits
    ///   via the pre-PR `RowCollector::admit` semantics (one `key_hash` +
    ///   one key `Value` clone per row per working set), batch via
    ///   `admit_batch` (`AipSetBuilder::extend_batch` sharing the
    ///   operator's digests — zero additional hashes, values cloned only
    ///   for genuinely new exact keys).
    /// * `state-scan` — the cost-based manager's set construction over a
    ///   completed `StateView` (exact hash-set kind, the §V-B reuse case):
    ///   per-row hash + key `Value` clone + insert (which re-allocates the
    ///   key vector), vs per-row hash + `insert_at` (positional compare,
    ///   a key vector built only for genuinely new keys — ~8% of rows
    ///   here).
    ///
    /// The acceptance bar is ≥ 1.5× build throughput at batch 1024.
    pub fn admit(&self) -> Result<FigureReport> {
        use sip_common::{DigestBuffer, Row, Value};
        use sip_filter::AipSetBuilder;
        use std::hint::black_box;
        use std::time::Instant;

        let batch = self.config.batch_size.max(1);
        let n_rows: usize = 1 << 17;
        let key_space = 10_000i64;
        // Stateful-operator-input-shaped rows: key, payload int, payload
        // string; ~92% duplicate keys, as a fact input over a key domain.
        let rows: Vec<Row> = (0..n_rows as i64)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i % key_space),
                    Value::Int(i),
                    Value::str("payload-string"),
                ])
            })
            .collect();
        // The feed-forward shape: every potentially useful working set at
        // once — the paper's Bloom default stacked with an exact hash set.
        let kinds = [AipSetKind::Bloom, AipSetKind::Hash];
        let positions = [0usize];
        let repeats = self.config.repeats.max(1);
        let new_builders = || -> Vec<AipSetBuilder> {
            kinds
                .iter()
                .map(|&k| AipSetBuilder::new(k, key_space as usize, 0.05, 1))
                .collect()
        };

        // --- admit-build: row-at-a-time (pre-PR RowCollector::admit) ---
        let mut row_keys = 0u64;
        let mut digests = DigestBuffer::default();
        let t = Instant::now();
        for _ in 0..repeats {
            let mut builders = new_builders();
            for chunk in rows.chunks(batch) {
                // The operator's own key pass — paid in both variants.
                digests.compute(chunk, &positions);
                for row in chunk {
                    for b in builders.iter_mut() {
                        let digest = row.key_hash(&positions);
                        let key = [row.get(0).clone()];
                        b.insert(digest, &key);
                    }
                }
            }
            row_keys = builders
                .into_iter()
                .map(|b| b.finish().n_keys())
                .sum::<u64>();
        }
        let admit_row_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let row_keys = black_box(row_keys);

        // --- admit-build: batch (admit_batch over the shared digests) ---
        let mut batch_keys = 0u64;
        let t = Instant::now();
        for _ in 0..repeats {
            let mut builders = new_builders();
            for chunk in rows.chunks(batch) {
                digests.compute(chunk, &positions);
                for b in builders.iter_mut() {
                    b.extend_batch(chunk, &positions, &digests);
                }
            }
            batch_keys = builders
                .into_iter()
                .map(|b| b.finish().n_keys())
                .sum::<u64>();
        }
        let admit_batch_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let batch_keys = black_box(batch_keys);
        if row_keys != batch_keys {
            return Err(sip_common::SipError::Exec(format!(
                "admit divergence: row build holds {row_keys} keys, batch build {batch_keys}"
            )));
        }

        // --- state-scan: row-at-a-time (pre-PR cost-based for_each:
        // hash + key clone + insert, which re-allocates the key) ---
        let scan_kind = AipSetKind::Hash; // the §V-B hash-table reuse case
        let mut scan_row_keys = 0u64;
        let t = Instant::now();
        for _ in 0..repeats {
            let mut b = AipSetBuilder::new(scan_kind, key_space as usize, 0.05, 1);
            for row in &rows {
                let digest = row.key_hash(&positions);
                let key = [row.get(0).clone()];
                b.insert(digest, &key);
            }
            scan_row_keys = b.finish().n_keys();
        }
        let scan_row_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let scan_row_keys = black_box(scan_row_keys);

        // --- state-scan: positional (insert_at — no key materialization) ---
        let mut scan_batch_keys = 0u64;
        let t = Instant::now();
        for _ in 0..repeats {
            let mut b = AipSetBuilder::new(scan_kind, key_space as usize, 0.05, 1);
            for row in &rows {
                b.insert_at(row.key_hash(&positions), row.values(), &positions);
            }
            scan_batch_keys = b.finish().n_keys();
        }
        let scan_batch_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let scan_batch_keys = black_box(scan_batch_keys);
        if scan_row_keys != scan_batch_keys {
            return Err(sip_common::SipError::Exec(format!(
                "state-scan divergence: row {scan_row_keys} keys, bulk {scan_batch_keys}"
            )));
        }

        let mrows = |secs: f64| n_rows as f64 / secs / 1e6;
        let cell =
            |name: &str, variant: &str, secs: f64, keys: u64, speedup: Option<f64>| ReportRow {
                query: name.into(),
                strategy: variant.into(),
                secs,
                ci: 0.0,
                state_mb: 0.0,
                rows: keys,
                extra: match speedup {
                    Some(s) => format!("{:.1} Mrows/s, speedup {s:.2}x", mrows(secs)),
                    None => format!("{:.1} Mrows/s", mrows(secs)),
                },
                ..Default::default()
            };
        Ok(FigureReport {
            id: "admit".into(),
            title: format!(
                "AIP build path: row admit vs batch admit ({n_rows} rows, batch {batch}, \
Bloom+Hash working sets)"
            ),
            rows: vec![
                cell("admit-build", "row", admit_row_secs, row_keys, None),
                cell(
                    "admit-build",
                    "batch",
                    admit_batch_secs,
                    batch_keys,
                    Some(admit_row_secs / admit_batch_secs),
                ),
                cell("state-scan", "row", scan_row_secs, scan_row_keys, None),
                cell(
                    "state-scan",
                    "batch",
                    scan_batch_secs,
                    scan_batch_keys,
                    Some(scan_row_secs / scan_batch_secs),
                ),
            ],
            notes: vec![
                "row = one key hash + one key Value clone per row per working set \
(RowCollector::admit / StateView::for_each insert); batch = the operator's shared digest \
pass + bulk inserts (admit_batch / extend_batch), cloning a value only for new exact keys. \
Both admit-build variants pay the operator's own digest pass."
                    .into(),
            ],
        })
    }

    /// Columnar micro-figure: the typed-column kernels against the same
    /// kernels over row-shaped batches — both *batched* (post-vectorization
    /// interiors), so the measured delta is purely the memory layout.
    ///
    /// * `digest` — one key-digest pass ([`DigestBuffer::compute`] over
    ///   `&[Row]` vs [`DigestBuffer::compute_cols`] over typed column
    ///   slices with NULL flagging fused).
    /// * `tap-probe` — a two-filter injected-tap stack
    ///   (`TapKernel::probe_chain` vs `probe_chain_cols`).
    /// * `shuffle-route` — digest + selection-vector dealing + building the
    ///   per-destination outgoing batches (row clones vs per-column
    ///   gathers).
    /// * `stream-gen` — satellite: [`sip_data::stream_lineitem`] generating
    ///   LINEITEM in constant-memory columnar chunks, at the configured
    ///   `--sf` and at 4× it, showing flat chunk footprint and throughput.
    ///
    /// Every pair self-checks (digest checksums, survivor and routed
    /// counts) so a layout divergence fails the figure rather than skewing
    /// it. The acceptance bar is ≥ 1.5× on `digest`/`tap-probe` or
    /// `shuffle-route` at batch 1024.
    pub fn columnar(&self) -> Result<FigureReport> {
        use sip_common::{ColumnarBatch, DigestBuffer, Row, SelVec, Value};
        use sip_engine::{InjectedFilter, TapKernel};
        use sip_filter::AipSetBuilder;
        use std::hint::black_box;
        use std::sync::Arc as StdArc;
        use std::time::Instant;

        let batch = self.config.batch_size.max(1);
        let n_rows: usize = 1 << 17;
        let key_space = 10_000i64;
        let dop = 4u32;
        // Join-output-shaped rows: key, payload int, payload string.
        let rows: Vec<Row> = (0..n_rows as i64)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i % key_space),
                    Value::Int(i),
                    Value::str("payload-string"),
                ])
            })
            .collect();
        let cols = ColumnarBatch::from_rows(&rows);
        let pass_bytes = cols.size_bytes() as f64;
        let repeats = self.config.repeats.max(1);
        // Walk the columnar batch in the same chunk grid `rows.chunks`
        // produces, as metadata-only slices.
        let col_chunks = |f: &mut dyn FnMut(&ColumnarBatch)| {
            let mut off = 0usize;
            while off < n_rows {
                let n = batch.min(n_rows - off);
                f(&cols.slice(off, n));
                off += n;
            }
        };

        // --- digest: row layout ---
        let mut digests = DigestBuffer::default();
        let mut row_sum = 0u64;
        let t = Instant::now();
        for _ in 0..repeats {
            for chunk in rows.chunks(batch) {
                digests.compute(chunk, &[0]);
                for &d in digests.digests() {
                    row_sum = row_sum.wrapping_add(d);
                }
            }
        }
        let digest_row_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let row_sum = black_box(row_sum);

        // --- digest: columnar layout ---
        let mut col_sum = 0u64;
        let t = Instant::now();
        for _ in 0..repeats {
            col_chunks(&mut |chunk| {
                digests.compute_cols(chunk, &[0]);
                for &d in digests.digests() {
                    col_sum = col_sum.wrapping_add(d);
                }
            });
        }
        let digest_col_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let col_sum = black_box(col_sum);
        if row_sum != col_sum {
            return Err(sip_common::SipError::Exec(format!(
                "columnar divergence: row digest checksum {row_sum:#x}, columnar {col_sum:#x}"
            )));
        }

        // A realistic tap stack over the key column: a Bloom filter keeping
        // roughly half the key domain, stacked with an exact hash set.
        let build = |kind: AipSetKind, keys: std::ops::Range<i64>| {
            let mut b = AipSetBuilder::new(kind, (keys.end - keys.start) as usize, 0.05, 1);
            for k in keys {
                let key = vec![Value::Int(k)];
                b.insert(sip_common::hash_key(&key), &key);
            }
            StdArc::new(b.finish())
        };
        let chain: Vec<StdArc<InjectedFilter>> = vec![
            StdArc::new(InjectedFilter::new(
                "bloom[k]",
                vec![0],
                build(AipSetKind::Bloom, 0..key_space / 2),
            )),
            StdArc::new(InjectedFilter::new(
                "hash[k]",
                vec![0],
                build(AipSetKind::Hash, 0..key_space / 4),
            )),
        ];

        // --- tap-probe: row layout ---
        let mut kernel = TapKernel::new();
        let mut row_survivors = 0usize;
        let t = Instant::now();
        for _ in 0..repeats {
            for chunk in rows.chunks(batch) {
                kernel.begin(chunk.len());
                kernel.probe_chain(&chain, chunk);
                row_survivors += kernel.sel().len();
            }
        }
        let tap_row_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let row_survivors = black_box(row_survivors) / repeats;

        // --- tap-probe: columnar layout ---
        let mut col_survivors = 0usize;
        let t = Instant::now();
        for _ in 0..repeats {
            col_chunks(&mut |chunk| {
                kernel.begin(chunk.len());
                kernel.probe_chain_cols(&chain, chunk);
                col_survivors += kernel.sel().len();
            });
        }
        let tap_col_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let col_survivors = black_box(col_survivors) / repeats;
        if row_survivors != col_survivors {
            return Err(sip_common::SipError::Exec(format!(
                "columnar divergence: row tap kept {row_survivors}, columnar {col_survivors}"
            )));
        }

        // --- shuffle-route: row layout (digest + selection-vector dealing,
        // per-destination batches built from row clones — the ShuffleWrite
        // row arm's extend_sel) ---
        let mut route: Vec<SelVec> = (0..dop as usize).map(|_| SelVec::default()).collect();
        let mut owners: Vec<u32> = Vec::new();
        let mut buckets: Vec<Vec<Row>> = (0..dop as usize).map(|_| Vec::new()).collect();
        let mut row_routed = 0usize;
        let t = Instant::now();
        for _ in 0..repeats {
            for chunk in rows.chunks(batch) {
                kernel.begin(chunk.len());
                kernel.probe_chain(&chain, chunk);
                for s in route.iter_mut() {
                    s.clear();
                }
                {
                    let d = kernel.digests(chunk, &[0]).digests();
                    owners.clear();
                    owners.extend(d.iter().map(|&d| sip_common::hash::partition_of(d, dop)));
                }
                for i in kernel.sel().iter() {
                    route[owners[i as usize] as usize].push(i);
                }
                for (b, s) in buckets.iter_mut().zip(route.iter()) {
                    b.clear();
                    b.extend(s.iter().map(|i| chunk[i as usize].clone()));
                    row_routed += b.len();
                }
            }
        }
        let route_row_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let row_routed = black_box(row_routed) / repeats;

        // --- shuffle-route: columnar layout (shared digest pass, per-
        // destination column gathers — the ShuffleWrite columnar arm) ---
        let mut col_routed = 0usize;
        let t = Instant::now();
        for _ in 0..repeats {
            col_chunks(&mut |chunk| {
                kernel.begin(chunk.len());
                kernel.probe_chain_cols(&chain, chunk);
                for s in route.iter_mut() {
                    s.clear();
                }
                {
                    let d = kernel.digests_cols(chunk, &[0]).digests();
                    owners.clear();
                    owners.extend(d.iter().map(|&d| sip_common::hash::partition_of(d, dop)));
                }
                for i in kernel.sel().iter() {
                    route[owners[i as usize] as usize].push(i);
                }
                for s in route.iter() {
                    if !s.is_empty() {
                        col_routed += black_box(chunk.gather(s.as_slice())).len();
                    }
                }
            });
        }
        let route_col_secs = t.elapsed().as_secs_f64() / repeats as f64;
        let col_routed = black_box(col_routed) / repeats;
        if row_routed != col_routed {
            return Err(sip_common::SipError::Exec(format!(
                "columnar divergence: row route dealt {row_routed}, columnar {col_routed}"
            )));
        }

        let mrows = |secs: f64| n_rows as f64 / secs / 1e6;
        let gbs = |secs: f64| pass_bytes / secs / 1e9;
        let cell =
            |name: &str, variant: &str, secs: f64, kept: usize, speedup: Option<f64>| ReportRow {
                query: name.into(),
                strategy: variant.into(),
                secs,
                ci: 0.0,
                state_mb: 0.0,
                rows: kept as u64,
                extra: match speedup {
                    Some(s) => format!(
                        "{:.1} Mrows/s ({:.2} GB/s), speedup {s:.2}x",
                        mrows(secs),
                        gbs(secs)
                    ),
                    None => format!("{:.1} Mrows/s ({:.2} GB/s)", mrows(secs), gbs(secs)),
                },
                ..Default::default()
            };
        let mut rows_out = vec![
            cell("digest", "row", digest_row_secs, n_rows, None),
            cell(
                "digest",
                "columnar",
                digest_col_secs,
                n_rows,
                Some(digest_row_secs / digest_col_secs),
            ),
            cell("tap-probe", "row", tap_row_secs, row_survivors, None),
            cell(
                "tap-probe",
                "columnar",
                tap_col_secs,
                col_survivors,
                Some(tap_row_secs / tap_col_secs),
            ),
            cell("shuffle-route", "row", route_row_secs, row_routed, None),
            cell(
                "shuffle-route",
                "columnar",
                route_col_secs,
                col_routed,
                Some(route_row_secs / route_col_secs),
            ),
        ];

        // --- stream-gen: constant-memory chunked LINEITEM generation ---
        const STREAM_CHUNK: usize = 8192;
        for mult in [1.0f64, 4.0] {
            let sf = self.config.scale_factor * mult;
            let cfg = sip_data::TpchConfig {
                scale_factor: sf,
                seed: self.config.seed,
                zipf_z: 0.0,
            };
            let mut streamed = 0u64;
            let mut peak_chunk_bytes = 0usize;
            let t = Instant::now();
            sip_data::stream_lineitem(&cfg, STREAM_CHUNK, &mut |b| {
                streamed += b.len() as u64;
                peak_chunk_bytes = peak_chunk_bytes.max(b.size_bytes());
                Ok(())
            })?;
            let secs = t.elapsed().as_secs_f64();
            rows_out.push(ReportRow {
                query: "stream-gen".into(),
                strategy: format!("sf={sf}"),
                secs,
                ci: 0.0,
                state_mb: peak_chunk_bytes as f64 / 1e6,
                rows: streamed,
                extra: format!(
                    "{:.2} Mrows/s, peak chunk {:.0} KB",
                    streamed as f64 / secs / 1e6,
                    peak_chunk_bytes as f64 / 1e3
                ),
                ..Default::default()
            });
        }

        Ok(FigureReport {
            id: "columnar".into(),
            title: format!(
                "columnar vs row batch layout ({n_rows} rows, batch {batch}, 2-filter tap, \
dop {dop} routing) + constant-memory streamed generation"
            ),
            rows: rows_out,
            notes: vec![
                "Both variants are batched; the delta is layout alone. row = Value-enum rows \
(digest/probe dispatch per value, routed batches built from row clones); columnar = typed \
column slices (fused NULL flagging, dict-aware string digests, routed batches gathered per \
column). state_mb on stream-gen cells = peak resident chunk, flat across scale factors."
                    .into(),
                "Divergence self-checks: digest checksums, tap survivor counts, and routed row \
counts must match between layouts or the figure errors."
                    .into(),
            ],
        })
    }

    /// Skew-adaptive shuffle figure: a Zipf-keyed join over a slow
    /// (delay-modeled) fact source, swept over `zipf_z ∈ {0, 0.5, 1.0,
    /// 1.5}` × dop × salting on/off.
    ///
    /// The fact table's only join key is the Zipf-hot column, so the
    /// unsalted plan hash-splits the *scans* on it — the partition owning
    /// the hot key ships (and sleeps through) the hot key's share of the
    /// delayed source, then its reader eats the same share of the join.
    /// With salting on, the planner detects the heavy hitter from the
    /// base-table stats, splits the fact scans by rowid (balanced
    /// shipping), scatters hot probe rows round-robin and broadcasts the
    /// matching dimension rows. Salting auto-fires only where the skew
    /// model says it pays: the `zipf_z ≤ 1.0` cells plan identically with
    /// salting on or off (the adaptivity check), while `zipf_z = 1.5`
    /// must show the salted plan ≥ 1.5× the unsalted one at dop 4.
    pub fn skew(&self) -> Result<FigureReport> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sip_common::{DataType, Field, FxHashMap, Row, Schema, Value};
        use sip_data::{Table, Zipf};
        use sip_engine::NoopMonitor;
        use sip_parallel::{PartitionConfig, PartitionedExec, SaltConfig};
        use sip_plan::QueryBuilder;

        const KEYS: u64 = 64;
        let n_rows = ((2_000_000.0 * self.config.scale_factor) as usize).max(2_000);
        // Transmission-dominated source: the delay models what a slow
        // (remote) fact feed costs per shipped row, the axis the paper's
        // delayed experiments use.
        let fact_delay = DelayModel {
            initial: std::time::Duration::from_millis(50),
            every_n: 250,
            pause: std::time::Duration::from_millis(2),
        };
        let mut dops = vec![1u32];
        let mut d = 2;
        while d <= self.config.dop.max(1) {
            dops.push(d);
            d *= 2;
        }
        let mut rows_out: Vec<ReportRow> = Vec::new();
        let mut notes: Vec<String> = Vec::new();
        let mut hot_ratio_at_4: Option<f64> = None;

        for &z in &[0.0f64, 0.5, 1.0, 1.5] {
            // fact(fb, pay) with fb ~ Zipf(z); dim(hb) covers the domain.
            let zipf = Zipf::new(KEYS, z);
            let mut rng = StdRng::seed_from_u64(self.config.seed ^ z.to_bits());
            let int = |n: &str| Field::new(n, DataType::Int);
            let facts: Vec<Row> = (0..n_rows)
                .map(|i| {
                    Row::new(vec![
                        Value::Int(zipf.sample(&mut rng) as i64),
                        Value::Int(i as i64),
                    ])
                })
                .collect();
            let mut catalog = sip_data::Catalog::new();
            catalog.add(
                Table::new(
                    "fact",
                    Schema::new(vec![int("fb"), int("pay")]),
                    vec![],
                    vec![],
                    facts,
                )
                .unwrap(),
            );
            catalog.add(
                Table::new(
                    "dim",
                    Schema::new(vec![int("hb")]),
                    vec![],
                    vec![],
                    (1..=KEYS as i64)
                        .map(|k| Row::new(vec![Value::Int(k)]))
                        .collect(),
                )
                .unwrap(),
            );
            let mut q = QueryBuilder::new(&catalog);
            let f = q.scan("fact", "f", &["fb", "pay"]).unwrap();
            let h = q.scan("dim", "h", &["hb"]).unwrap();
            let j = q.join(f, h, &[("f.fb", "h.hb")]).unwrap();
            let phys =
                Arc::new(sip_engine::lower(&j.into_plan(), q.into_attrs(), &catalog).unwrap());

            let mut base_secs: FxHashMap<u32, f64> = Default::default();
            for &dop in &dops {
                for salt_on in [false, true] {
                    if dop == 1 && salt_on {
                        continue; // serial baseline has no routing to salt
                    }
                    let cfg = PartitionConfig {
                        salt: SaltConfig {
                            enabled: salt_on,
                            ..SaltConfig::default()
                        },
                        ..PartitionConfig::default()
                    };
                    let exec = PartitionedExec::with_config(dop.max(1), cfg);
                    // The expansion is deterministic: inspect it once,
                    // outside the timing loop (the plan pass includes the
                    // heavy-hitter stats lookup). The balance metric reads
                    // the *probe mesh*'s readers — a plain hash mesh when
                    // unsalted, the scatter mesh when salted — so broadcast
                    // traffic (uniform by construction) cannot dilute it.
                    let mut salted_meshes = 0usize;
                    let mut probe_readers: Vec<sip_common::OpId> = Vec::new();
                    if dop > 1 {
                        let (expanded, _) = exec
                            .plan(&phys)
                            .map_err(|e| sip_common::SipError::Exec(format!("plan failed: {e}")))?;
                        salted_meshes = expanded
                            .nodes
                            .iter()
                            .filter(|n| {
                                matches!(
                                    n.kind,
                                    sip_engine::PhysKind::ShuffleWrite { salt: Some(_), .. }
                                )
                            })
                            .count();
                        let probe_mesh = expanded.nodes.iter().find_map(|n| match &n.kind {
                            sip_engine::PhysKind::ShuffleWrite { mesh, salt, .. }
                                if salt
                                    .as_ref()
                                    .is_none_or(|s| s.role == sip_engine::SaltRole::Scatter) =>
                            {
                                Some(*mesh)
                            }
                            _ => None,
                        });
                        if let Some(pm) = probe_mesh {
                            probe_readers = expanded
                                .nodes
                                .iter()
                                .filter_map(|n| match &n.kind {
                                    sip_engine::PhysKind::ShuffleRead { mesh, .. }
                                        if *mesh == pm =>
                                    {
                                        Some(n.id)
                                    }
                                    _ => None,
                                })
                                .collect();
                        }
                    }
                    let mut secs = Vec::with_capacity(self.config.repeats);
                    let mut balances = Vec::new();
                    for _ in 0..self.config.repeats.max(1) {
                        let mut opts = self.config.exec_options()?;
                        opts = opts.with_delay("fact", fact_delay.clone());
                        let (out, _map) =
                            exec.execute(Arc::clone(&phys), Arc::new(NoopMonitor), opts)?;
                        secs.push(out.metrics.wall_time.as_secs_f64());
                        let reads: Vec<u64> = probe_readers
                            .iter()
                            .map(|&r| out.metrics.per_op[r.index()].rows_out)
                            .collect();
                        let total: u64 = reads.iter().sum();
                        if total > 0 {
                            let max = *reads.iter().max().unwrap() as f64;
                            balances.push(max / (total as f64 / reads.len() as f64));
                        }
                    }
                    // No mesh at all (co-located plan or serial run) is
                    // "n/a", not a perfectly balanced 0.00.
                    let balance = if balances.is_empty() {
                        "n/a".to_string()
                    } else {
                        format!("{:.2}", mean(&balances))
                    };
                    let mean_secs = mean(&secs);
                    let throughput = n_rows as f64 / mean_secs / 1e6;
                    let speedup = if dop == 1 {
                        String::new()
                    } else if !salt_on {
                        base_secs.insert(dop, mean_secs);
                        String::new()
                    } else {
                        let ratio = base_secs.get(&dop).map(|b| b / mean_secs).unwrap_or(1.0);
                        if z >= 1.5 && dop == 4 {
                            hot_ratio_at_4 = Some(ratio);
                        }
                        format!(", {ratio:.2}x vs salt-off")
                    };
                    let strategy = if dop == 1 {
                        "serial".to_string()
                    } else {
                        format!("dop={dop} salt={}", if salt_on { "on" } else { "off" })
                    };
                    rows_out.push(ReportRow {
                        query: format!("zipf={z}"),
                        strategy,
                        secs: mean_secs,
                        ci: ci95(&secs),
                        state_mb: 0.0,
                        rows: n_rows as u64,
                        extra: format!(
                            "{throughput:.2} Mrows/s, {salted_meshes} salted writers, \
max/mean routed {balance}{speedup}"
                        ),
                        ..Default::default()
                    });
                }
            }
        }
        if let Some(r) = hot_ratio_at_4 {
            notes.push(format!(
                "zipf=1.5 dop=4: salting-on is {r:.2}x salting-off (acceptance bar 1.5x at \
full scale; small --sf runs are latency-floor-bound)."
            ));
        }
        notes.push(
            "Salting auto-fires from base-table heavy-hitter stats; zipf <= 1.0 cells plan \
identically with salting on or off (0 salted writers)."
                .into(),
        );
        Ok(FigureReport {
            id: "skew".into(),
            title: format!(
                "skew-adaptive shuffle: Zipf fact ({n_rows} rows, {KEYS} keys, delayed source) \
x dop x salting"
            ),
            rows: rows_out,
            notes,
        })
    }

    /// Stage-boundary adaptive execution figure: a two-join plan whose
    /// mid-plan selectivity is invisible to base-table statistics, swept
    /// over dop {1, 2, 4} × {frozen, adaptive}, both under the cost-based
    /// AIP controller.
    ///
    /// fact(fa, fb, flag): `flag` carries ~120 distinct values but 70% of
    /// the rows hold `flag = 1`, so the per-column estimate (`1/distinct`)
    /// prices the filtered stream at under 1% of the fact table while the
    /// true survivor share is 70% — a value-frequency skew no distinct
    /// count or min/max reveals. The frozen plan's controller evaluates
    /// the dim2-side AIP filter against that estimate and **rejects** it
    /// (building a set over dim2's keys costs more than the estimated
    /// probe stream could save). The adaptive executor materializes the
    /// stage-1 output as `__stage1` with exact statistics, re-runs
    /// UPDATEESTIMATES against them, and the *same* controller flips to
    /// **building** the filter — pruning the ~96% of survivors whose `fb`
    /// misses dim2 before they reach the probe. The measured stage-1
    /// cardinality also re-chooses the stage-2 dop (serial at default
    /// scale: no shuffle mesh, no merge tree, one dim2 scan instead of
    /// dop co-partitioned ones).
    ///
    /// A short initial-only stall on the fact feed lets every dimension
    /// build finish — and the frozen controller decide — before the first
    /// fact row moves, so the frozen reject is deterministic rather than
    /// a race against the scan. Both modes pay the same stall once.
    pub fn adaptive(&self) -> Result<FigureReport> {
        use sip_common::{DataType, Field, FxHashMap, Row, Schema, Value};
        use sip_data::Table;
        use sip_engine::canonical;
        use sip_expr::Expr;
        use sip_parallel::{AdaptiveConfig, AdaptiveExec, PartitionConfig, PartitionedExec};
        use sip_plan::QueryBuilder;

        const FLAG_VALUES: i64 = 200;
        const DIM1_KEYS: i64 = 200;
        const DIM1_FANOUT: i64 = 5;
        const DIM2_KEYS: i64 = 30_000;
        const DIM3_KEYS: i64 = 30_000;
        let n_rows = ((2_400_000.0 * self.config.scale_factor) as usize).max(24_000);
        let fact_delay = DelayModel::initial_only(std::time::Duration::from_millis(60));
        // Applies only where a `__stage1` binding exists — the adaptive
        // stage-2 plan. It holds the re-scanned stream just long enough for
        // the dim2/dim3 builds (and the controller's decisions) to land,
        // the same determinism the fact stall buys stage 1; the frozen plan
        // has no such binding and never pays it.
        let stage2_delay = DelayModel::initial_only(std::time::Duration::from_millis(35));

        let int = |n: &str| Field::new(n, DataType::Int);
        let facts: Vec<Row> = (0..n_rows as i64)
            .map(|i| {
                let flagged = i % 10 < 9;
                let flag = if flagged {
                    1
                } else {
                    2 + i % (FLAG_VALUES - 1)
                };
                // Survivors overwhelmingly miss dim3 (unique cold keys); 1
                // in 25 hits it. Filtered-out rows stay in dim3's domain so
                // the base table's fc statistics smell uniform. fb always
                // hits dim2 — that join passes everything.
                let fc = if !flagged || i % 25 == 0 {
                    1 + i % DIM3_KEYS
                } else {
                    DIM3_KEYS + 1 + i
                };
                Row::new(vec![
                    Value::Int(1 + i % DIM1_KEYS),
                    Value::Int(1 + i % DIM2_KEYS),
                    Value::Int(fc),
                    Value::Int(flag),
                ])
            })
            .collect();
        let dim = |name: &str, col: &str, keys: i64, copies: i64| {
            Table::new(
                name,
                Schema::new(vec![Field::new(col, DataType::Int)]),
                vec![],
                vec![],
                (0..keys * copies)
                    .map(|k| Row::new(vec![Value::Int(k % keys + 1)]))
                    .collect(),
            )
            .unwrap()
        };
        let mut catalog = sip_data::Catalog::new();
        catalog.add(
            Table::new(
                "fact",
                Schema::new(vec![int("fa"), int("fb"), int("fc"), int("flag")]),
                vec![],
                vec![],
                facts,
            )
            .unwrap(),
        );
        // dim1 multiplies: five rows per key, so the joined stream crossing
        // the frozen plan's shuffle meshes is ~4.5x the base table the
        // (shared) stage-1 scans read.
        catalog.add(dim("dim1", "da", DIM1_KEYS, DIM1_FANOUT));
        catalog.add(dim("dim2", "db", DIM2_KEYS, 1));
        catalog.add(dim("dim3", "dc", DIM3_KEYS, 1));

        // σ(flag=1)(fact) ⋈ dim1 on fa, then ⋈ dim2 on fb, then ⋈ dim3 on
        // fc: stacked stateful operators on three different key classes.
        // The adaptive split lands on the first join; at dop > 1 the frozen
        // plan must carry the multiplied stream across TWO shuffle meshes
        // (fa-class to fb-class to fc-class) and probe it through both
        // downstream joins, while the adaptive stage 2 prunes the rescan at
        // its source with the flipped fc filter.
        let mut q = QueryBuilder::new(&catalog);
        let f = q.scan("fact", "f", &["fa", "fb", "fc", "flag"]).unwrap();
        let pred = f.col("flag").unwrap().eq(Expr::lit(1i64));
        let f = q.filter(f, pred);
        let d1 = q.scan("dim1", "d1", &["da"]).unwrap();
        let j1 = q.join(f, d1, &[("f.fa", "d1.da")]).unwrap();
        let d2 = q.scan("dim2", "d2", &["db"]).unwrap();
        let j2 = q.join(j1, d2, &[("f.fb", "d2.db")]).unwrap();
        let d3 = q.scan("dim3", "d3", &["dc"]).unwrap();
        let j3 = q.join(j2, d3, &[("f.fc", "d3.dc")]).unwrap();
        let plan = j3.into_plan();
        let eq = PredicateIndex::build(&plan).eq;
        let phys = Arc::new(sip_engine::lower(&plan, q.into_attrs(), &catalog).unwrap());

        // Stage-2 dop floor: at default scale the measured stage-1 stream
        // cannot amortize per-partition overhead, so the clamp collapses
        // stage 2 to serial; at full scale (--sf 1) it sustains the dop.
        let adaptive_cfg = || AdaptiveConfig {
            min_rows_per_partition: 600_000,
            partition: PartitionConfig::default(),
        };
        let controller = || {
            sip_core::CostBased::new(
                eq.clone(),
                AipConfig::hash_sets(),
                sip_optimizer::CostModel::default(),
            )
        };

        let mut dops = vec![1u32];
        let mut d = 2;
        while d <= self.config.dop.max(1) {
            dops.push(d);
            d *= 2;
        }
        let mut rows_out: Vec<ReportRow> = Vec::new();
        let mut notes: Vec<String> = Vec::new();
        let mut reference: Option<Vec<String>> = None;
        let mut frozen_secs: FxHashMap<u32, f64> = Default::default();
        let mut ratio_at_top: Option<f64> = None;

        // One untimed adaptive pass faults the generated tables in and
        // warms the allocator for the stage-1 materialization, so the
        // first measured cell is not charged the cold-start cost.
        {
            let mut opts = self.config.exec_options()?;
            opts = opts
                .with_delay("fact", fact_delay.clone())
                .with_delay("__stage1", stage2_delay.clone());
            let exec = AdaptiveExec::with_config(*dops.last().unwrap(), adaptive_cfg());
            exec.execute(Arc::clone(&phys), Arc::new(sip_engine::NoopMonitor), opts)?;
        }

        // Best-of-N repeats per cell: the workload is deterministic, and
        // on a machine with a large resident heap the runs that materialize
        // a large intermediate suffer one-sided multi-hundred-ms page-fault
        // stalls (observed ~20% of runs under a microVM). The minimum is
        // the unperturbed cost of either strategy; the ±95% column still
        // reports the spread across all repeats.
        let reps = self.config.repeats.max(5);
        for &dop in &dops {
            for adapt in [false, true] {
                let mut secs = Vec::with_capacity(reps);
                let mut out_rows = 0u64;
                let mut extra = String::new();
                for rep in 0..reps {
                    let cb = controller();
                    let mut opts = self.config.exec_options()?;
                    opts = opts
                        .with_delay("fact", fact_delay.clone())
                        .with_delay("__stage1", stage2_delay.clone());
                    opts.collect_rows = true;
                    let monitor = Arc::clone(&cb) as Arc<dyn sip_engine::ExecMonitor>;
                    // One clock around the whole call: the adaptive arm is
                    // charged for everything between its stages too (the
                    // materialization and statistics pass), not just the
                    // two stages' own wall clocks.
                    let t0 = std::time::Instant::now();
                    let (out, report) = if adapt {
                        let exec = AdaptiveExec::with_config(dop, adaptive_cfg());
                        let (out, _map, report) = exec.execute(Arc::clone(&phys), monitor, opts)?;
                        (out, Some(report))
                    } else {
                        let exec = PartitionedExec::with_config(dop, PartitionConfig::default());
                        let (out, _map) = exec.execute(Arc::clone(&phys), monitor, opts)?;
                        (out, None)
                    };
                    secs.push(t0.elapsed().as_secs_f64());
                    if std::env::var_os("ADAPTIVE_DEBUG").is_some() {
                        // Untraced diagnostics: op-level tracing distorts
                        // scheduling on one core, but row counters are
                        // always on, and the total rows emitted across ops
                        // exposes a lost tap race (no pruning) instantly.
                        let oprows: u64 = out.metrics.per_op.iter().map(|m| m.rows_out).sum();
                        eprintln!(
                            "  dop {dop} adapt {adapt} rep {rep}: {:.3}s s1={:.3}s oprows={oprows}",
                            secs.last().unwrap(),
                            report
                                .as_ref()
                                .map(|r| r.stage1_wall.as_secs_f64())
                                .unwrap_or(0.0),
                        );
                        if rep == 0 {
                            if let Some(r) = &report {
                                for l in &r.decisions {
                                    eprintln!("    [stage] {l}");
                                }
                            }
                            for l in cb.decisions() {
                                eprintln!("    [cb] {l}");
                            }
                        }
                    }
                    out_rows = out.rows.len() as u64;
                    let got = canonical(&out.rows);
                    match &reference {
                        None => reference = Some(got),
                        Some(want) => {
                            if &got != want {
                                return Err(sip_common::SipError::Exec(format!(
                                    "adaptive figure: dop {dop} adapt {adapt} \
changed the result multiset"
                                )));
                            }
                        }
                    }
                    if rep + 1 == reps {
                        let decisions = cb.decisions();
                        let rejects = decisions
                            .iter()
                            .filter(|l| l.starts_with("reject "))
                            .count();
                        let builds = decisions.iter().filter(|l| l.starts_with("build ")).count();
                        extra = match report {
                            Some(r) => format!(
                                "s1={:.3}s/{} rows, stage2 dop={} hot_share={:.2} \
builds={builds} rejects={rejects}",
                                r.stage1_wall.as_secs_f64(),
                                r.stage1_rows,
                                r.stage2_dop,
                                r.hot_share
                            ),
                            None => format!("builds={builds} rejects={rejects}"),
                        };
                    }
                }
                let best_secs = secs.iter().copied().fold(f64::INFINITY, f64::min);
                if !adapt {
                    frozen_secs.insert(dop, best_secs);
                } else {
                    let ratio = frozen_secs.get(&dop).map(|f| f / best_secs).unwrap_or(1.0);
                    if dop == *dops.last().unwrap() {
                        ratio_at_top = Some(ratio);
                    }
                    let _ = write!(extra, " {ratio:.2}x vs frozen");
                }
                rows_out.push(ReportRow {
                    query: format!("dop={dop}"),
                    strategy: if adapt { "adaptive" } else { "frozen" }.to_string(),
                    secs: best_secs,
                    ci: ci95(&secs),
                    state_mb: 0.0,
                    rows: out_rows,
                    extra,
                    ..Default::default()
                });
            }
        }
        if let Some(r) = ratio_at_top {
            notes.push(format!(
                "dop={}: adaptive is {r:.2}x the frozen plan (acceptance bar 1.3x at dop 4) — \
runtime UPDATEESTIMATES flips the frozen controller's filter reject to a build, and the \
measured stage-1 cardinality re-chooses the downstream dop.",
                dops.last().unwrap()
            ));
        }
        notes.push(format!(
            "flag: {FLAG_VALUES} distinct values but 90% hold flag=1, so plan-time selectivity \
(1/distinct) underestimates the joined stream ~180x; only the materialized __stage1 stats \
see it, flipping the frozen controller's fc-filter reject into a stage-2 build whose tap \
prunes the rescan before both downstream meshes."
        ));
        Ok(FigureReport {
            id: "adaptive".into(),
            title: format!(
                "stage-boundary adaptive execution: stats-invisible mid-plan skew \
({n_rows} rows, dim3 {DIM3_KEYS} keys, delayed source) x dop x frozen/adaptive"
            ),
            rows: rows_out,
            notes,
        })
    }

    /// `repro --profile <dir>`: schema-checked [`QueryProfile`] artifacts
    /// plus the matching EXPLAIN ANALYZE trees, both rendered from the
    /// same frozen profile so they cannot disagree.
    ///
    /// Two workloads, all traced at span level:
    ///
    /// * Q4A (the TPC-H Q5 family's many-way join) under feed-forward AIP
    ///   at dop 1 / 2 / 4 — the per-op phase breakdown across the serial
    ///   and partition-parallel executors;
    /// * the `skew` figure's Zipf-hot join with salting forced on at the
    ///   top dop — the salted-shuffle exemplar (scatter/broadcast meshes,
    ///   routing histograms, AIP filter lifecycle events).
    ///
    /// Returns the rendered text and one `(file name, JSON)` pair per
    /// profile (`PROFILE_*.json`).
    pub fn profile(&self) -> Result<(String, Vec<(String, String)>)> {
        use sip_core::FeedForward;
        use sip_engine::{explain_analyze_profiled, QueryProfile, TraceLevel};
        use sip_plan::QueryBuilder;

        let mut text = String::new();
        let mut artifacts: Vec<(String, String)> = Vec::new();

        // --- Q4A under feed-forward AIP, dop 1/2/4 ---
        let catalog = self.catalog_for("Q4A")?;
        let spec = build_query("Q4A", catalog)?;
        let phys = Arc::new(spec.lower(catalog, Strategy::FeedForward)?);
        let mut dops = vec![1u32];
        let mut d = 2;
        while d <= self.config.dop.max(1) && dops.len() < 3 {
            dops.push(d);
            d *= 2;
        }
        for &dop in &dops {
            let eq = PredicateIndex::build(&spec.plan).eq;
            let monitor = FeedForward::new(eq, AipConfig::paper());
            let opts = self.config.exec_options()?.with_trace(TraceLevel::Spans);
            let (report_plan, out, map) = if dop <= 1 {
                let out = execute(Arc::clone(&phys), monitor, opts)?;
                (Arc::clone(&phys), out, None)
            } else {
                // The expansion is deterministic: plan once for the tree,
                // execute the same logical plan for the numbers.
                let exec = sip_parallel::PartitionedExec::new(dop);
                let expanded = match exec.plan(&phys) {
                    Ok((expanded, _)) => expanded,
                    Err(_) => Arc::clone(&phys), // no safe parallel region: serial fallback
                };
                let (out, map) = exec.execute(Arc::clone(&phys), monitor, opts)?;
                (expanded, out, map)
            };
            let profile = QueryProfile::from_run(&report_plan, &out.metrics, map.as_deref());
            let _ = writeln!(text, "## Q4A FeedForward dop={dop}\n");
            text.push_str(&explain_analyze_profiled(
                &report_plan,
                &out.metrics,
                map.as_deref(),
            ));
            text.push('\n');
            artifacts.push((format!("PROFILE_q4a_dop{dop}.json"), profile.to_json()));
        }

        // --- Salted-shuffle exemplar: the skew figure's zipf=1.5 join ---
        {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            use sip_common::{DataType, Field, Row, Schema, Value};
            use sip_data::{Table, Zipf};
            use sip_engine::NoopMonitor;
            use sip_parallel::{PartitionConfig, PartitionedExec, SaltConfig};

            const KEYS: u64 = 64;
            let n_rows = ((2_000_000.0 * self.config.scale_factor) as usize).max(2_000);
            let zipf = Zipf::new(KEYS, 1.5);
            let mut rng = StdRng::seed_from_u64(self.config.seed ^ 1.5f64.to_bits());
            let int = |n: &str| Field::new(n, DataType::Int);
            let facts: Vec<Row> = (0..n_rows)
                .map(|i| {
                    Row::new(vec![
                        Value::Int(zipf.sample(&mut rng) as i64),
                        Value::Int(i as i64),
                    ])
                })
                .collect();
            let mut catalog = sip_data::Catalog::new();
            catalog.add(Table::new(
                "fact",
                Schema::new(vec![int("fb"), int("pay")]),
                vec![],
                vec![],
                facts,
            )?);
            catalog.add(Table::new(
                "dim",
                Schema::new(vec![int("hb")]),
                vec![],
                vec![],
                (1..=KEYS as i64)
                    .map(|k| Row::new(vec![Value::Int(k)]))
                    .collect(),
            )?);
            let mut q = QueryBuilder::new(&catalog);
            let f = q.scan("fact", "f", &["fb", "pay"])?;
            let h = q.scan("dim", "h", &["hb"])?;
            let j = q.join(f, h, &[("f.fb", "h.hb")])?;
            let salted = Arc::new(sip_engine::lower(&j.into_plan(), q.into_attrs(), &catalog)?);
            let dop = self.config.dop.max(2);
            let cfg = PartitionConfig {
                salt: SaltConfig {
                    enabled: true,
                    ..SaltConfig::default()
                },
                ..PartitionConfig::default()
            };
            let exec = PartitionedExec::with_config(dop, cfg);
            let expanded = match exec.plan(&salted) {
                Ok((expanded, _)) => expanded,
                Err(e) => {
                    return Err(sip_common::SipError::Exec(format!(
                        "salted profile plan failed: {e}"
                    )))
                }
            };
            let opts = self.config.exec_options()?.with_trace(TraceLevel::Spans);
            let (out, map) = exec.execute(Arc::clone(&salted), Arc::new(NoopMonitor), opts)?;
            let profile = QueryProfile::from_run(&expanded, &out.metrics, map.as_deref());
            let _ = writeln!(
                text,
                "## salted zipf=1.5 join, dop={dop} ({n_rows} rows, {KEYS} keys)\n"
            );
            text.push_str(&explain_analyze_profiled(
                &expanded,
                &out.metrics,
                map.as_deref(),
            ));
            artifacts.push((format!("PROFILE_salted_dop{dop}.json"), profile.to_json()));
        }

        Ok((text, artifacts))
    }

    /// §V preliminary experiment: Bloom-filter vs hash-set AIP sets.
    pub fn ablation_sets(&self) -> Result<FigureReport> {
        let mut rows = Vec::new();
        for id in ["Q1A", "Q2A"] {
            let catalog = self.catalog_for(id)?;
            let spec = build_query(id, catalog)?;
            for (label, cfg) in [
                ("FF/bloom", AipConfig::paper()),
                ("FF/hash", AipConfig::hash_sets()),
            ] {
                let m = measure(
                    &spec,
                    catalog,
                    Strategy::FeedForward,
                    &self.config,
                    &cfg,
                    &[],
                )?;
                rows.push(to_row(id, label, &m));
            }
        }
        Ok(FigureReport {
            id: "ablation-sets".into(),
            title: "AIP-set representation: Bloom filters vs exact hash sets".into(),
            rows,
            notes: vec![
                "The paper found Bloom filters superior overall and shipped only them (§V).".into(),
            ],
        })
    }

    /// Bloom sizing ablation: FPR sweep (the paper fixes 5%, 1 hash).
    pub fn ablation_fpr(&self) -> Result<FigureReport> {
        let mut rows = Vec::new();
        let id = "Q2A";
        let catalog = self.catalog_for(id)?;
        let spec = build_query(id, catalog)?;
        for fpr in [0.005, 0.05, 0.20] {
            let cfg = AipConfig {
                fpr,
                ..AipConfig::paper()
            };
            let m = measure(
                &spec,
                catalog,
                Strategy::FeedForward,
                &self.config,
                &cfg,
                &[],
            )?;
            let mut r = to_row(id, "Feed-forward", &m);
            r.extra = format!("fpr={fpr}");
            rows.push(r);
        }
        Ok(FigureReport {
            id: "ablation-fpr".into(),
            title: "Bloom FPR sweep around the paper's 5% default".into(),
            rows,
            notes: vec![],
        })
    }

    /// §III-C extension ablation: min/max range summaries as AIP sets.
    pub fn ablation_minmax(&self) -> Result<FigureReport> {
        let mut rows = Vec::new();
        let id = "Q2A";
        let catalog = self.catalog_for(id)?;
        let spec = build_query(id, catalog)?;
        for (label, kind) in [
            ("FF/bloom", AipSetKind::Bloom),
            ("FF/minmax", AipSetKind::MinMax),
        ] {
            let cfg = AipConfig {
                set_kind: kind,
                ..AipConfig::paper()
            };
            let m = measure(
                &spec,
                catalog,
                Strategy::FeedForward,
                &self.config,
                &cfg,
                &[],
            )?;
            rows.push(to_row(id, label, &m));
        }
        Ok(FigureReport {
            id: "ablation-minmax".into(),
            title: "§III-C extension: range (min/max) summaries vs Bloom filters".into(),
            rows,
            notes: vec!["Key domains are dense here, so range envelopes prune little.".into()],
        })
    }
}

fn to_row(id: &str, strategy: &str, m: &Measurement) -> ReportRow {
    ReportRow {
        query: id.to_string(),
        strategy: strategy.to_string(),
        secs: m.secs_mean,
        ci: m.secs_ci95,
        state_mb: m.state_mb,
        rows: m.rows,
        extra: if m.filters > 0.0 {
            format!("{:.0} filters, {:.0} rows dropped", m.filters, m.dropped)
        } else {
            String::new()
        },
        phase_secs: m.phase_secs,
    }
}

fn split_time_space(
    rows: Vec<ReportRow>,
    time: (&str, &str),
    space: (&str, &str),
    notes: Vec<String>,
) -> (FigureReport, FigureReport) {
    let t = FigureReport {
        id: time.0.into(),
        title: time.1.into(),
        rows: rows.clone(),
        notes: notes.clone(),
    };
    let s = FigureReport {
        id: space.0.into(),
        title: space.1.into(),
        rows,
        notes,
    };
    (t, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_harness() -> Harness {
        Harness::new(ExperimentConfig {
            scale_factor: 0.002,
            repeats: 1,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn table1_lists_all_queries() {
        let h = tiny_harness();
        let t = h.table1();
        for id in ["Q1A", "Q2E", "Q3C", "Q4B", "Q5A", "EX"] {
            assert!(t.contains(id), "missing {id}");
        }
    }

    #[test]
    fn fig1_and_fig2_render() {
        let h = tiny_harness();
        let f1 = h.fig1().unwrap();
        assert!(f1.contains("HashJoin"));
        let f2 = h.fig2().unwrap();
        assert!(f2.contains("source-predicate graph"));
        assert!(f2.contains("AIP registry"));
    }

    #[test]
    fn report_markdown_shape() {
        let r = FigureReport {
            id: "figX".into(),
            title: "test".into(),
            rows: vec![ReportRow {
                query: "Q1A".into(),
                strategy: "Baseline".into(),
                secs: 1.5,
                ci: 0.1,
                state_mb: 2.0,
                rows: 10,
                extra: String::new(),
                ..Default::default()
            }],
            notes: vec!["note".into()],
        };
        let md = r.to_markdown();
        assert!(md.contains("| Q1A | Baseline | 1.500 |"));
        assert!(md.contains("> note"));
    }

    /// The `BENCH_<figure>.json` schema smoke check CI relies on: figure
    /// id, the full config block, one point per cell, escaped strings.
    #[test]
    fn report_json_shape() {
        let r = FigureReport {
            id: "admit".into(),
            title: "quote \" and\nnewline".into(),
            rows: vec![ReportRow {
                query: "admit-build".into(),
                strategy: "batch".into(),
                secs: 0.25,
                ci: 0.0,
                state_mb: 0.0,
                rows: 42,
                extra: "speedup 2.00x".into(),
                ..Default::default()
            }],
            notes: vec!["n1".into()],
        };
        let cfg = ExperimentConfig::default();
        let j = r.to_json(&cfg);
        for needle in [
            "\"figure\": \"admit\"",
            "\"title\": \"quote \\\" and\\nnewline\"",
            "\"scale_factor\": 0.05",
            "\"merge_fanin\": 0",
            "\"query\": \"admit-build\"",
            "\"strategy\": \"batch\"",
            "\"secs\": 0.250000",
            "\"rows\": 42",
            "\"notes\": [\"n1\"]",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
        // Well-bracketed (cheap structural sanity without a parser).
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces:\n{j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
