//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p sip-bench --bin repro -- --figure all --sf 0.05 --repeats 3
//! cargo run --release -p sip-bench --bin repro -- --figure fig5
//! ```
//!
//! Figures: table1, fig1, fig2, fig5..fig14 (time/space pairs run
//! together), overhead, scaling, kernels, ablation-sets, ablation-fpr,
//! ablation-minmax, all.

use sip_bench::figures::Harness;
use sip_bench::measure::ExperimentConfig;
use std::process::ExitCode;

struct Args {
    figure: String,
    config: ExperimentConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut figure = "all".to_string();
    let mut config = ExperimentConfig::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--figure" | "-f" => figure = take(&mut i)?,
            "--sf" => {
                config.scale_factor = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --sf: {e}"))?
            }
            "--repeats" | "-r" => {
                config.repeats = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --repeats: {e}"))?
            }
            "--seed" => {
                config.seed = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--batch" | "--batch-size" => {
                config.batch_size = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --batch-size: {e}"))?
            }
            "--channel-capacity" => {
                config.channel_capacity = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --channel-capacity: {e}"))?
            }
            "--dop" => {
                config.dop = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --dop: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--figure all|table1|fig1|fig2|fig5|fig6|fig9|fig10|fig13|\
overhead|scaling|kernels|ablation-sets|ablation-fpr|ablation-minmax] [--sf F] [--repeats N] \
[--seed S] [--batch-size N] [--channel-capacity N] [--dop N]\n\n\
  --batch-size N        rows per engine batch (default 1024); also the\n\
                        batch the `kernels` micro-figure sweeps\n\
  --channel-capacity N  bounded-channel backpressure window, in batches\n\
                        (default 16)\n\
  --dop N               max degree of partition parallelism swept by the\n\
                        `scaling` benchmark (powers of two up to N;\n\
                        default 4, 1 = serial only)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    Ok(Args { figure, config })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# generating data (sf={}, seed={}, repeats={}) ...",
        args.config.scale_factor, args.config.seed, args.config.repeats
    );
    let harness = match Harness::new(args.config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fig = args.figure.to_ascii_lowercase();
    let run_all = fig == "all";
    let mut failed = false;
    let mut section = |name: &str, body: Result<String, sip_common::SipError>| {
        if !(run_all || fig == name || alias(&fig) == name) {
            return;
        }
        eprintln!("# running {name} ...");
        match body {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error in {name}: {e}");
                failed = true;
            }
        }
    };

    section("table1", Ok(harness.table1()));
    section("fig1", harness.fig1());
    section("fig2", harness.fig2());
    section(
        "fig5",
        harness
            .fig5_7()
            .map(|(t, s)| format!("{}\n{}", t.to_markdown(), s.to_markdown())),
    );
    section(
        "fig6",
        harness
            .fig6_8()
            .map(|(t, s)| format!("{}\n{}", t.to_markdown(), s.to_markdown())),
    );
    section(
        "fig9",
        harness
            .fig9_11()
            .map(|(t, s)| format!("{}\n{}", t.to_markdown(), s.to_markdown())),
    );
    section(
        "fig10",
        harness
            .fig10_12()
            .map(|(t, s)| format!("{}\n{}", t.to_markdown(), s.to_markdown())),
    );
    section(
        "fig13",
        harness
            .fig13_14()
            .map(|(t, s)| format!("{}\n{}", t.to_markdown(), s.to_markdown())),
    );
    section("overhead", harness.overhead().map(|r| r.to_markdown()));
    section("scaling", harness.scaling().map(|r| r.to_markdown()));
    section("kernels", harness.kernels().map(|r| r.to_markdown()));
    section(
        "ablation-sets",
        harness.ablation_sets().map(|r| r.to_markdown()),
    );
    section(
        "ablation-fpr",
        harness.ablation_fpr().map(|r| r.to_markdown()),
    );
    section(
        "ablation-minmax",
        harness.ablation_minmax().map(|r| r.to_markdown()),
    );

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Figure aliases: asking for a space figure runs its time/space pair.
fn alias(f: &str) -> &str {
    match f {
        "fig7" => "fig5",
        "fig8" => "fig6",
        "fig11" => "fig9",
        "fig12" => "fig10",
        "fig14" => "fig13",
        other => other,
    }
}
