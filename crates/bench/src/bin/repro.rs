//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p sip-bench --bin repro -- --figure all --sf 0.05 --repeats 3
//! cargo run --release -p sip-bench --bin repro -- --figure fig5
//! ```
//!
//! Figures: table1, fig1, fig2, fig5..fig14 (time/space pairs run
//! together), overhead, scaling, skew, adaptive, kernels, admit,
//! columnar, ablation-sets, ablation-fpr, ablation-minmax, all.
//!
//! `--json <dir>` additionally writes one machine-readable
//! `BENCH_<figure>.json` per measured figure into `<dir>` (created if
//! missing), so the perf trajectory can be tracked across PRs.
//!
//! `--profile <dir>` runs the span-traced query profiles (Q4A at dop
//! 1/2/4 plus the salted-shuffle exemplar), prints their EXPLAIN ANALYZE
//! trees, and writes one schema-checked `PROFILE_<run>.json`
//! [`sip_engine::QueryProfile`] artifact per run into `<dir>`.

use sip_bench::figures::{FigureReport, Harness};
use sip_bench::measure::ExperimentConfig;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    figure: String,
    config: ExperimentConfig,
    json_dir: Option<PathBuf>,
    profile_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut figure = "all".to_string();
    let mut config = ExperimentConfig::default();
    let mut json_dir = None;
    let mut profile_dir = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--figure" | "-f" => figure = take(&mut i)?,
            "--json" => json_dir = Some(PathBuf::from(take(&mut i)?)),
            "--profile" => profile_dir = Some(PathBuf::from(take(&mut i)?)),
            "--sf" => {
                config.scale_factor = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --sf: {e}"))?
            }
            "--repeats" | "-r" => {
                config.repeats = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --repeats: {e}"))?
            }
            "--seed" => {
                config.seed = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--batch" | "--batch-size" => {
                config.batch_size = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --batch-size: {e}"))?
            }
            "--channel-capacity" => {
                config.channel_capacity = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --channel-capacity: {e}"))?
            }
            "--dop" => {
                config.dop = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --dop: {e}"))?
            }
            "--merge-fanin" => {
                config.merge_fanin = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --merge-fanin: {e}"))?
            }
            "--timeout-ms" => {
                config.timeout_ms = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --timeout-ms: {e}"))?,
                )
            }
            "--retries" => {
                config.retries = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --retries: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--figure all|table1|fig1|fig2|fig5|fig6|fig9|fig10|fig13|\
overhead|scaling|skew|adaptive|kernels|admit|columnar|recovery|ablation-sets|ablation-fpr|\
ablation-minmax] \
[--sf F] \
[--repeats N] [--seed S] [--batch-size N] [--channel-capacity N] [--dop N] \
[--merge-fanin N] [--timeout-ms N] [--retries N] [--json DIR]\n\n\
  --batch-size N        rows per engine batch (default 1024); also the\n\
                        batch the `kernels`/`admit` micro-figures sweep\n\
  --channel-capacity N  bounded-channel backpressure window, in batches\n\
                        (default 16)\n\
  --dop N               max degree of partition parallelism swept by the\n\
                        `scaling` and `skew` benchmarks (powers of two up\n\
                        to N; default 4, 1 = serial only)\n\
  --merge-fanin N       merge-tree fan-in for parallel runs (0 = auto:\n\
                        flat up to dop 4, binary tree above)\n\
  --timeout-ms N        per-query deadline in milliseconds; a run past it\n\
                        fails with `deadline exceeded` plus per-phase\n\
                        time shares (default: no deadline; 0 is rejected)\n\
  --retries N           retry budget (total attempts) for the recovery\n\
                        layer: fragment replay, whole-run retry, stage\n\
                        checkpoints (default 0 = fail-fast, no recovery)\n\
  --json DIR            also write BENCH_<figure>.json per measured\n\
                        figure into DIR (created if missing)\n\
  --profile DIR         run the span-traced query profiles (Q4A at dop\n\
                        1/2/4 plus the salted-shuffle exemplar), print\n\
                        their EXPLAIN ANALYZE trees, and write one\n\
                        schema-checked PROFILE_<run>.json per run into\n\
                        DIR (created if missing)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    Ok(Args {
        figure,
        config,
        json_dir,
        profile_dir,
    })
}

/// Which figure(s) were asked for.
struct Selection {
    run_all: bool,
    fig: String,
}

impl Selection {
    fn wants(&self, name: &str) -> bool {
        self.run_all || self.fig == name || alias(&self.fig) == name
    }
}

/// Run a text-only section (Table I, plan dumps) when selected.
fn run_section(
    sel: &Selection,
    name: &str,
    failed: &mut bool,
    body: impl FnOnce() -> Result<String, sip_common::SipError>,
) {
    if !sel.wants(name) {
        return;
    }
    eprintln!("# running {name} ...");
    match body() {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("error in {name}: {e}");
            *failed = true;
        }
    }
}

/// Run a measured section when selected: markdown to stdout, plus one
/// `BENCH_<figure>.json` per report when `--json` was given.
fn run_figures(
    sel: &Selection,
    name: &str,
    json_dir: Option<&PathBuf>,
    config: &ExperimentConfig,
    failed: &mut bool,
    body: impl FnOnce() -> Result<Vec<FigureReport>, sip_common::SipError>,
) {
    if !sel.wants(name) {
        return;
    }
    eprintln!("# running {name} ...");
    match body() {
        Ok(reports) => {
            for r in &reports {
                println!("{}", r.to_markdown());
                if let Some(dir) = json_dir {
                    let path = dir.join(format!("BENCH_{}.json", r.id));
                    match std::fs::write(&path, r.to_json(config)) {
                        Ok(()) => eprintln!("# wrote {}", path.display()),
                        Err(e) => {
                            eprintln!("error writing {}: {e}", path.display());
                            *failed = true;
                        }
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("error in {name}: {e}");
            *failed = true;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (flag, dir) in [("--json", &args.json_dir), ("--profile", &args.profile_dir)] {
        if let Some(dir) = dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {flag} dir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "# generating data (sf={}, seed={}, repeats={}) ...",
        args.config.scale_factor, args.config.seed, args.config.repeats
    );
    let harness = match Harness::new(args.config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sel = Selection {
        run_all: args.figure.eq_ignore_ascii_case("all"),
        fig: args.figure.to_ascii_lowercase(),
    };
    let mut failed = false;
    let json = args.json_dir.as_ref();
    let cfg = &args.config;

    run_section(&sel, "table1", &mut failed, || Ok(harness.table1()));
    run_section(&sel, "fig1", &mut failed, || harness.fig1());
    run_section(&sel, "fig2", &mut failed, || harness.fig2());
    let pair =
        |r: Result<(FigureReport, FigureReport), sip_common::SipError>| r.map(|(t, s)| vec![t, s]);
    run_figures(&sel, "fig5", json, cfg, &mut failed, || {
        pair(harness.fig5_7())
    });
    run_figures(&sel, "fig6", json, cfg, &mut failed, || {
        pair(harness.fig6_8())
    });
    run_figures(&sel, "fig9", json, cfg, &mut failed, || {
        pair(harness.fig9_11())
    });
    run_figures(&sel, "fig10", json, cfg, &mut failed, || {
        pair(harness.fig10_12())
    });
    run_figures(&sel, "fig13", json, cfg, &mut failed, || {
        pair(harness.fig13_14())
    });
    run_figures(&sel, "overhead", json, cfg, &mut failed, || {
        harness.overhead().map(|r| vec![r])
    });
    run_figures(&sel, "scaling", json, cfg, &mut failed, || {
        harness.scaling().map(|r| vec![r])
    });
    run_figures(&sel, "skew", json, cfg, &mut failed, || {
        harness.skew().map(|r| vec![r])
    });
    run_figures(&sel, "adaptive", json, cfg, &mut failed, || {
        harness.adaptive().map(|r| vec![r])
    });
    run_figures(&sel, "kernels", json, cfg, &mut failed, || {
        harness.kernels().map(|r| vec![r])
    });
    run_figures(&sel, "admit", json, cfg, &mut failed, || {
        harness.admit().map(|r| vec![r])
    });
    run_figures(&sel, "columnar", json, cfg, &mut failed, || {
        harness.columnar().map(|r| vec![r])
    });
    run_figures(&sel, "recovery", json, cfg, &mut failed, || {
        harness.recovery().map(|r| vec![r])
    });
    run_figures(&sel, "ablation-sets", json, cfg, &mut failed, || {
        harness.ablation_sets().map(|r| vec![r])
    });
    run_figures(&sel, "ablation-fpr", json, cfg, &mut failed, || {
        harness.ablation_fpr().map(|r| vec![r])
    });
    run_figures(&sel, "ablation-minmax", json, cfg, &mut failed, || {
        harness.ablation_minmax().map(|r| vec![r])
    });

    // The profile section is opt-in via `--profile DIR` (or `--figure
    // profile` for the text trees alone): span-level tracing over Q4A at
    // dop 1/2/4 plus the salted-shuffle exemplar, each run serialized as a
    // PROFILE_<run>.json QueryProfile artifact next to its EXPLAIN ANALYZE
    // tree.
    if args.profile_dir.is_some() || sel.fig == "profile" {
        eprintln!("# running profile ...");
        match harness.profile() {
            Ok((text, artifacts)) => {
                println!("{text}");
                if let Some(dir) = &args.profile_dir {
                    for (name, body) in &artifacts {
                        let path = dir.join(name);
                        match std::fs::write(&path, body) {
                            Ok(()) => eprintln!("# wrote {}", path.display()),
                            Err(e) => {
                                eprintln!("error writing {}: {e}", path.display());
                                failed = true;
                            }
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("error in profile: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Figure aliases: asking for a space figure runs its time/space pair.
fn alias(f: &str) -> &str {
    match f {
        "fig7" => "fig5",
        "fig8" => "fig6",
        "fig11" => "fig9",
        "fig12" => "fig10",
        "fig14" => "fig13",
        other => other,
    }
}
