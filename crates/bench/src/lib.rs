//! # sip-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§VI). The `repro` binary drives it; the Criterion
//! benches reuse the same runners for statistically tighter microbenches.
//!
//! Absolute numbers differ from the paper (different hardware, scale
//! factor, and a Rust engine instead of 80 kLoC of C++); the quantities
//! compared are the paper's: wall-clock running time and peak intermediate
//! state per query/strategy pair, plus shipped bytes in the distributed
//! setting.

pub mod figures;
pub mod measure;

pub use figures::{FigureReport, ReportRow};
pub use measure::{measure, ExperimentConfig, Measurement};
