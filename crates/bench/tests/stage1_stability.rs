//! Ignored diagnostic for wall-clock stability of the adaptive two-stage
//! path (`cargo test -p sip-bench --release --test stage1_stability --
//! --ignored --nocapture`).
//!
//! Kept because it isolates an environment effect that shaped the
//! `adaptive` figure's methodology: on hosts with a large resident heap
//! (e.g. under a microVM with lazy host-side faulting), runs that
//! materialize a large intermediate suffer one-sided multi-hundred-ms
//! page-fault stalls in ~20% of repeats, while the same plan under the
//! same monitor is stable in a small process. The figure therefore
//! reports best-of-N per cell; this probe shows the raw distribution.

use sip_common::{DataType, Field, Row, Schema, Value};
use sip_data::{Catalog, Table};
use sip_engine::DelayModel;
use sip_expr::Expr;
use sip_parallel::{AdaptiveConfig, AdaptiveExec, PartitionConfig};
use sip_plan::QueryBuilder;
use std::sync::Arc;

fn catalog(n_rows: i64) -> Catalog {
    let int = |n: &str| Field::new(n, DataType::Int);
    let facts: Vec<Row> = (0..n_rows)
        .map(|i| {
            let flagged = i % 10 < 9;
            let flag = if flagged { 1 } else { 2 + i % 199 };
            let fc = if !flagged || i % 25 == 0 {
                1 + i % 30_000
            } else {
                30_001 + i
            };
            Row::new(vec![
                Value::Int(1 + i % 200),
                Value::Int(1 + i % 30_000),
                Value::Int(fc),
                Value::Int(flag),
            ])
        })
        .collect();
    let dim = |name: &str, col: &str, keys: i64, copies: i64| {
        Table::new(
            name,
            Schema::new(vec![Field::new(col, DataType::Int)]),
            vec![],
            vec![],
            (0..keys * copies)
                .map(|k| Row::new(vec![Value::Int(k % keys + 1)]))
                .collect(),
        )
        .unwrap()
    };
    let mut catalog = Catalog::new();
    catalog.add(
        Table::new(
            "fact",
            Schema::new(vec![int("fa"), int("fb"), int("fc"), int("flag")]),
            vec![],
            vec![],
            facts,
        )
        .unwrap(),
    );
    catalog.add(dim("dim1", "da", 200, 5));
    catalog.add(dim("dim2", "db", 30_000, 1));
    catalog.add(dim("dim3", "dc", 30_000, 1));
    catalog
}

#[test]
#[ignore]
fn adaptive_wall_stability() {
    let catalog = catalog(120_000);
    let mut q = QueryBuilder::new(&catalog);
    let f = q.scan("fact", "f", &["fa", "fb", "fc", "flag"]).unwrap();
    let pred = f.col("flag").unwrap().eq(Expr::lit(1i64));
    let f = q.filter(f, pred);
    let d1 = q.scan("dim1", "d1", &["da"]).unwrap();
    let j1 = q.join(f, d1, &[("f.fa", "d1.da")]).unwrap();
    let d2 = q.scan("dim2", "d2", &["db"]).unwrap();
    let j2 = q.join(j1, d2, &[("f.fb", "d2.db")]).unwrap();
    let d3 = q.scan("dim3", "d3", &["dc"]).unwrap();
    let j3 = q.join(j2, d3, &[("f.fc", "d3.dc")]).unwrap();
    let plan = j3.into_plan();
    let eq = sip_plan::PredicateIndex::build(&plan).eq;
    let phys = Arc::new(sip_engine::lower(&plan, q.into_attrs(), &catalog).unwrap());

    // Grow the resident heap the way the repro binary's harness does; the
    // stall does not reproduce in a small process.
    let ballast: Vec<Vec<Row>> = (0..8)
        .map(|s| {
            (0..500_000i64)
                .map(|i| Row::new(vec![Value::Int(s * 500_000 + i), Value::Int(i % 97)]))
                .collect()
        })
        .collect();

    for dop in [1u32, 4] {
        for rep in 0..6 {
            let mut opts = sip_engine::ExecOptions::default();
            opts = opts
                .with_delay(
                    "fact",
                    DelayModel::initial_only(std::time::Duration::from_millis(60)),
                )
                .with_delay(
                    "__stage1",
                    DelayModel::initial_only(std::time::Duration::from_millis(35)),
                );
            opts.collect_rows = true;
            let monitor: Arc<dyn sip_engine::ExecMonitor> = sip_core::CostBased::new(
                eq.clone(),
                sip_core::AipConfig::hash_sets(),
                sip_optimizer::CostModel::default(),
            );
            let exec = AdaptiveExec::with_config(
                dop,
                AdaptiveConfig {
                    min_rows_per_partition: 600_000,
                    partition: PartitionConfig::default(),
                },
            );
            let t0 = std::time::Instant::now();
            let (out, _map, report) = exec.execute(Arc::clone(&phys), monitor, opts).unwrap();
            eprintln!(
                "adaptive dop {dop} rep {rep}: {:.3}s s1={:.3}s rows={}",
                t0.elapsed().as_secs_f64(),
                report.stage1_wall.as_secs_f64(),
                out.rows.len()
            );
            assert_eq!(out.rows.len(), 24_000);
        }
    }
    drop(ballast);
}
