//! Explainability tour: the structures the AIP algorithms reason over
//! (Fig. 2) and the cost-based manager's actual runtime decisions.
//!
//! ```text
//! cargo run --release --example explain_aip
//! ```

use sip::core::{AipConfig, CostBased, FeedForward, Strategy};
use sip::data::{generate, TpchConfig};
use sip::engine::{execute, ExecOptions};
use sip::optimizer::CostModel;
use sip::plan::{PredicateIndex, SourcePredGraph};
use sip::queries::build_query;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = generate(&TpchConfig::uniform(0.02))?;
    let spec = build_query("EX", &catalog)?;

    // The source-predicate graph the optimizer builds (Fig. 2a).
    let graph = SourcePredGraph::build(&spec.plan, &spec.attrs);
    println!("{}", graph.display());

    // The physical plan.
    let phys = Arc::new(spec.lower(&catalog, Strategy::CostBased)?);
    println!("physical plan:\n{}", phys.display());

    // Run under feed-forward and show the registry (Fig. 2b).
    let eq = PredicateIndex::build(&spec.plan).eq;
    let ff = FeedForward::new(eq.clone(), AipConfig::paper());
    let out = execute(Arc::clone(&phys), ff.clone(), ExecOptions::default())?;
    println!(
        "feed-forward run: {} rows, {} filters injected, {} rows pruned\n",
        out.metrics.rows_out, out.metrics.filters_injected, out.metrics.aip_dropped_total
    );
    println!("{}", ff.registry().display());

    // Run under the cost-based manager and show its decision log.
    let cb = CostBased::new(eq, AipConfig::paper(), CostModel::default());
    let out = execute(Arc::clone(&phys), cb.clone(), ExecOptions::default())?;
    println!(
        "cost-based run: {} rows, {} filters injected, {} rows pruned",
        out.metrics.rows_out, out.metrics.filters_injected, out.metrics.aip_dropped_total
    );
    println!("\nESTIMATEBENEFIT decisions:");
    for d in cb.decisions() {
        println!("  {d}");
    }
    println!(
        "\nEXPLAIN ANALYZE (cost-based run):\n{}",
        sip::engine::explain_analyze(&phys, &out.metrics)
    );
    Ok(())
}
