//! Distributed AIP as an adaptive Bloomjoin (§V-B, §VI-C): PARTSUPP lives
//! on a remote site behind a simulated 100 Mbps link. With AIP, the master
//! ships a Bloom filter of the locally-completed subexpression to the site,
//! which prunes tuples *before* they cross the link.
//!
//! ```text
//! cargo run --release --example distributed_bloomjoin
//! ```

use sip::core::{AipConfig, Strategy};
use sip::data::{generate, TpchConfig};
use sip::engine::ExecOptions;
use sip::net::{run_distributed, LinkSpec, RemoteConfig};
use sip::queries::build_query;
use std::sync::atomic::Ordering;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = generate(&TpchConfig::uniform(0.02))?;
    let spec = build_query("Q3C", &catalog)?;
    let remote = RemoteConfig::new("partsupp", LinkSpec::lan_100mbps());
    println!("IBM query (Q3C) with PARTSUPP fetched over a 100 Mbps link\n");
    println!(
        "{:<14} {:>9} {:>12} {:>12} {:>14} {:>14}",
        "strategy", "time", "rows sent", "pruned@site", "row MB", "filter KB"
    );
    for strategy in [
        Strategy::Baseline,
        Strategy::FeedForward,
        Strategy::CostBased,
    ] {
        let run = run_distributed(
            &spec,
            &catalog,
            strategy,
            ExecOptions::default(),
            &AipConfig::paper(),
            &remote,
        )?;
        println!(
            "{:<14} {:>8.1?} {:>12} {:>12} {:>14.2} {:>14.1}",
            strategy.name(),
            run.output.metrics.wall_time,
            run.net.rows_shipped.load(Ordering::Relaxed),
            run.net.rows_pruned_remote.load(Ordering::Relaxed),
            run.net.row_bytes.load(Ordering::Relaxed) as f64 / 1e6,
            run.net.filter_bytes.load(Ordering::Relaxed) as f64 / 1e3,
        );
    }
    println!(
        "\nAIP derives the Bloomjoin's savings adaptively: the filter is only\n\
         built and shipped once a local subexpression has actually completed,\n\
         and the cost-based manager prices the transfer against the link."
    );
    Ok(())
}
