//! Wide-area scenario (§VI-B): the PARTSUPP relation is delayed 100 ms and
//! rate-limited (5 ms per 1000 tuples). Push engines tolerate the delay by
//! working elsewhere in the bushy plan; AIP exploits it — the undelayed
//! subexpressions complete first and their AIP sets prune the late data on
//! arrival.
//!
//! ```text
//! cargo run --release --example delayed_sources
//! ```

use sip::core::{run_query, AipConfig, Strategy};
use sip::data::{generate, TpchConfig};
use sip::engine::{DelayModel, ExecOptions};
use sip::queries::build_query;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = generate(&TpchConfig::uniform(0.02))?;
    let spec = build_query("Q1A", &catalog)?;
    println!("TPC-H Q2 (Q1A) with PARTSUPP delayed 100 ms + 5 ms/1000 tuples\n");
    println!(
        "{:<14} {:>9} {:>12} {:>9} {:>12}",
        "strategy", "time", "peak state", "filters", "rows pruned"
    );
    for strategy in Strategy::ALL {
        let opts = ExecOptions::default().with_delay("partsupp", DelayModel::paper_delayed());
        let out = run_query(&spec, &catalog, strategy, opts, &AipConfig::paper())?;
        println!(
            "{:<14} {:>8.1?} {:>12} {:>9} {:>12}",
            strategy.name(),
            out.metrics.wall_time,
            sip::common::bytes::human_bytes(out.metrics.peak_state_bytes),
            out.metrics.filters_injected,
            out.metrics.aip_dropped_total,
        );
    }
    println!(
        "\nAs in the paper's Figs. 9/11: delays compress the running-time gaps\n\
         (I/O dominates), but the state savings persist — valuable when many\n\
         queries share memory."
    );
    Ok(())
}
