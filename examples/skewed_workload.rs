//! Skewed data (§VI's Q1B/Q2B/Q3B): the same queries over a Zipf z = 0.5
//! data set, mirroring the paper's Microsoft skewed TPC-D generator.
//!
//! ```text
//! cargo run --release --example skewed_workload
//! ```

use sip::core::{run_query, AipConfig, Strategy};
use sip::data::{generate, TpchConfig};
use sip::engine::ExecOptions;
use sip::queries::build_query;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sf = 0.02;
    let uniform = generate(&TpchConfig::uniform(sf))?;
    let skewed = generate(&TpchConfig::skewed(sf))?;

    for (label, catalog) in [
        ("uniform (TPC-H)", &uniform),
        ("skewed z=0.5 (TPC-D)", &skewed),
    ] {
        println!("\n== {label} ==");
        let spec = build_query("Q2A", catalog)?;
        println!(
            "{:<14} {:>9} {:>12} {:>12}",
            "strategy", "time", "peak state", "rows pruned"
        );
        for strategy in Strategy::ALL {
            let out = run_query(
                &spec,
                catalog,
                strategy,
                ExecOptions::default(),
                &AipConfig::paper(),
            )?;
            println!(
                "{:<14} {:>8.1?} {:>12} {:>12}",
                strategy.name(),
                out.metrics.wall_time,
                sip::common::bytes::human_bytes(out.metrics.peak_state_bytes),
                out.metrics.aip_dropped_total,
            );
        }
    }
    println!(
        "\nSkew concentrates lineitem references on few parts, shrinking the\n\
         per-part aggregation and sharpening AIP's pruning on the hot keys."
    );
    Ok(())
}
