//! Partition-parallel scaling of a TPC-H-shaped workload.
//!
//! Two sweeps over increasing degrees of parallelism, both against
//! Zipf-skewed TPC-H data with the paper's slow-source delay model on the
//! big scans:
//!
//! * `EX` — the Fig. 1 running example: a single partitioning class, so
//!   the speedup comes purely from partitioned scans overlapping source
//!   latency (the partition predicate is pushed down to the simulated
//!   remote source).
//! * `Q4A` — a TPC-H 5-shaped multi-class join chain (custkey → orderkey
//!   → suppkey/nationkey): the parallel region must cross shuffle meshes
//!   at every partitioning-class change, the configuration that used to
//!   collapse into dop× replicated scans.
//!
//! ```text
//! cargo run --release --example parallel_scaling
//! ```
//!
//! Prints wall-clock per dop, the speedup over dop=1, and the per-worker
//! AIP tap counters (`aip_probed` / `aip_dropped`), and verifies every dop
//! returns the identical multiset of rows.

use sip::core::{run_query_dop, AipConfig, Strategy};
use sip::data::{generate, Catalog, TpchConfig};
use sip::engine::{canonical, DelayModel, ExecOptions};
use sip::queries::build_query;
use std::time::Duration;

/// §VI-B wide-area shape, dialed up on the named (fact) bindings:
/// 100 ms connection setup + a per-1000-tuple transmission pause.
fn options(slow: &[&str]) -> ExecOptions {
    let mut opts = ExecOptions::default();
    for binding in slow {
        let model = if *binding == "l" {
            DelayModel {
                initial: Duration::from_millis(100),
                every_n: 1000,
                pause: Duration::from_millis(10),
            }
        } else {
            DelayModel::paper_delayed()
        };
        opts = opts.with_delay(*binding, model);
    }
    opts
}

fn sweep(catalog: &Catalog, id: &str, slow: &[&str]) -> f64 {
    let spec = build_query(id, catalog).expect("build query");
    println!("## query {id} (slow sources: {})", slow.join(", "));
    let mut baseline_secs = None;
    let mut baseline_rows = None;
    let mut best = 1.0f64;
    for dop in [1u32, 2, 4] {
        let start = std::time::Instant::now();
        let (out, map) = run_query_dop(
            &spec,
            catalog,
            Strategy::FeedForward,
            options(slow),
            &AipConfig::paper(),
            dop,
        )
        .expect("query execution");
        let secs = start.elapsed().as_secs_f64();

        let rows = canonical(&out.rows);
        match &baseline_rows {
            None => baseline_rows = Some(rows),
            Some(expected) => {
                assert_eq!(&rows, expected, "{id}: dop {dop} changed the result set");
            }
        }

        let speedup = match baseline_secs {
            None => {
                baseline_secs = Some(secs);
                1.0
            }
            Some(base) => base / secs,
        };
        best = best.max(speedup);
        println!(
            "dop {dop}: {:7.3} s  speedup {speedup:4.2}x  rows {}  filters {}  dropped {}",
            secs, out.metrics.rows_out, out.metrics.filters_injected, out.metrics.aip_dropped_total
        );
        if let Some(map) = map {
            for s in out.metrics.per_partition(&map) {
                println!(
                    "    worker {}: rows_out {:>8}  aip_probed {:>8}  aip_dropped {:>8}",
                    s.partition, s.rows_out, s.aip_probed, s.aip_dropped
                );
            }
        }
        println!();
    }
    println!("{id}: identical results verified across all dops\n");
    best
}

fn main() {
    let catalog = generate(&TpchConfig {
        scale_factor: 0.02,
        seed: 0xC0FFEE,
        zipf_z: 0.5, // the paper's skewed TPC-D shape
    })
    .expect("generate TPC-H data");

    println!("# parallel_scaling — sf 0.02, zipf 0.5, slow sources");
    println!();
    sweep(&catalog, "EX", &["l", "ps1", "ps2"]);
    let multi_class = sweep(&catalog, "Q4A", &["l", "o"]);
    println!("multi-class best speedup over serial: {multi_class:.2}x");
}
