//! Partition-parallel scaling of a TPC-H-shaped workload query.
//!
//! Runs the Fig. 1 running example (`EX` from `sip-queries`) over
//! Zipf-skewed TPC-H data with the paper's slow-source delay model on the
//! big scans, at increasing degrees of parallelism. The partition predicate
//! is pushed down to the (simulated remote) sources, so `dop` partitioned
//! scans overlap their transmission latency — the same effect
//! distribution-aware pushdown has on real wide-area sources — while each
//! partition's feed-forward AIP taps prune sideways as soon as that
//! partition's build sides complete.
//!
//! ```text
//! cargo run --release --example parallel_scaling
//! ```
//!
//! Prints wall-clock per dop, the speedup over dop=1, and the per-worker
//! AIP tap counters (`aip_probed` / `aip_dropped`), and verifies every dop
//! returns the identical multiset of rows.

use sip::core::{run_query_dop, AipConfig, Strategy};
use sip::data::{generate, TpchConfig};
use sip::engine::{canonical, DelayModel, ExecOptions};
use sip::queries::build_query;
use std::time::Duration;

fn options() -> ExecOptions {
    // The paper's §VI-B wide-area shape, dialed up on the fact table:
    // 100 ms connection setup + a per-1000-tuple transmission pause.
    ExecOptions::default()
        .with_delay(
            "l",
            DelayModel {
                initial: Duration::from_millis(100),
                every_n: 1000,
                pause: Duration::from_millis(10),
            },
        )
        .with_delay("ps1", DelayModel::paper_delayed())
        .with_delay("ps2", DelayModel::paper_delayed())
}

fn main() {
    let catalog = generate(&TpchConfig {
        scale_factor: 0.02,
        seed: 0xC0FFEE,
        zipf_z: 0.5, // the paper's skewed TPC-D shape
    })
    .expect("generate TPC-H data");
    let spec = build_query("EX", &catalog).expect("build running example");

    println!("# parallel_scaling — query EX, sf 0.02, zipf 0.5, slow sources");
    println!();

    let mut baseline_secs = None;
    let mut baseline_rows = None;
    for dop in [1u32, 2, 4] {
        let start = std::time::Instant::now();
        let (out, map) = run_query_dop(
            &spec,
            &catalog,
            Strategy::FeedForward,
            options(),
            &AipConfig::paper(),
            dop,
        )
        .expect("query execution");
        let secs = start.elapsed().as_secs_f64();

        let rows = canonical(&out.rows);
        match &baseline_rows {
            None => baseline_rows = Some(rows),
            Some(expected) => {
                assert_eq!(&rows, expected, "dop {dop} changed the result set");
            }
        }

        let speedup = match baseline_secs {
            None => {
                baseline_secs = Some(secs);
                1.0
            }
            Some(base) => base / secs,
        };
        println!(
            "dop {dop}: {:7.3} s  speedup {speedup:4.2}x  rows {}  filters {}  dropped {}",
            secs, out.metrics.rows_out, out.metrics.filters_injected, out.metrics.aip_dropped_total
        );
        if let Some(map) = map {
            for s in out.metrics.per_partition(&map) {
                println!(
                    "    worker {}: rows_out {:>8}  aip_probed {:>8}  aip_dropped {:>8}",
                    s.partition, s.rows_out, s.aip_probed, s.aip_dropped
                );
            }
        }
        println!();
    }
    println!("identical results verified across all dops");
}
