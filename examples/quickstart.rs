//! Quickstart: run the paper's running example (Fig. 1) under all four
//! execution strategies and compare time, space, and pruning.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sip::core::{run_query, AipConfig, Strategy};
use sip::data::{generate, TpchConfig};
use sip::engine::ExecOptions;
use sip::queries::build_query;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a deterministic TPC-H-shaped data set (sf 0.02 ≈ 120k
    //    lineitems — a couple of seconds end to end).
    let catalog = generate(&TpchConfig::uniform(0.02))?;
    println!(
        "generated {} tables, {} total rows",
        catalog.table_names().len(),
        catalog.total_rows()
    );

    // 2. Build the running-example query (Example 2.1 / Fig. 1).
    let spec = build_query("EX", &catalog)?;
    println!("\nlogical plan:\n{}", spec.plan.display(&spec.attrs));

    // 3. Execute under each strategy.
    println!(
        "{:<14} {:>9} {:>12} {:>8} {:>9} {:>12}",
        "strategy", "time", "peak state", "rows", "filters", "rows pruned"
    );
    for strategy in Strategy::ALL {
        let out = run_query(
            &spec,
            &catalog,
            strategy,
            ExecOptions::default(),
            &AipConfig::paper(),
        )?;
        println!(
            "{:<14} {:>8.1?} {:>12} {:>8} {:>9} {:>12}",
            strategy.name(),
            out.metrics.wall_time,
            sip::common::bytes::human_bytes(out.metrics.peak_state_bytes),
            out.metrics.rows_out,
            out.metrics.filters_injected,
            out.metrics.aip_dropped_total,
        );
    }
    Ok(())
}
