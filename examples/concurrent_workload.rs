//! Multi-query workload: the paper argues AIP's memory savings matter most
//! "in a system that executes multiple queries simultaneously, as in such
//! systems memory shortages can constrain performance" (§VI-D). This
//! example runs the Q2/Q3 variants concurrently and compares the combined
//! intermediate-state footprint across strategies.
//!
//! ```text
//! cargo run --release --example concurrent_workload
//! ```

use sip::core::{run_query, AipConfig, Strategy};
use sip::data::{generate, TpchConfig};
use sip::engine::ExecOptions;
use sip::queries::build_query;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Arc::new(generate(&TpchConfig::uniform(0.02))?);
    let ids = ["Q2A", "Q2E", "Q3A", "Q3E", "Q1A"];
    println!("running {} queries concurrently per strategy\n", ids.len());
    println!(
        "{:<14} {:>12} {:>16} {:>14}",
        "strategy", "makespan", "sum peak state", "rows pruned"
    );
    for strategy in [
        Strategy::Baseline,
        Strategy::FeedForward,
        Strategy::CostBased,
    ] {
        let start = std::time::Instant::now();
        let mut handles = Vec::new();
        for id in ids {
            let catalog = Arc::clone(&catalog);
            handles.push(std::thread::spawn(move || {
                let spec = build_query(id, &catalog).unwrap();
                let opts = ExecOptions {
                    collect_rows: false,
                    ..Default::default()
                };
                let out = run_query(&spec, &catalog, strategy, opts, &AipConfig::paper()).unwrap();
                (out.metrics.peak_state_bytes, out.metrics.aip_dropped_total)
            }));
        }
        let mut total_peak = 0u64;
        let mut total_dropped = 0u64;
        for h in handles {
            let (peak, dropped) = h.join().expect("query thread");
            total_peak += peak;
            total_dropped += dropped;
        }
        println!(
            "{:<14} {:>11.1?} {:>16} {:>14}",
            strategy.name(),
            start.elapsed(),
            sip::common::bytes::human_bytes(total_peak),
            total_dropped,
        );
    }
    println!(
        "\n(sum of per-query peaks ≈ worst-case simultaneous footprint; AIP's\n\
         smaller hash tables translate directly into multi-query headroom)"
    );
    Ok(())
}
